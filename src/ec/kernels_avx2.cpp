/**
 * @file
 * 256-bit AVX2 kernels. VPSHUFB shuffles within each 128-bit lane, so
 * the GF tables are broadcast to both lanes and the split-table step is
 * identical to the SSE2 one at twice the width.
 *
 * Compiled with -mavx2 (see src/ec/CMakeLists.txt); selected by
 * dispatch.cpp only when the CPU reports avx2.
 */
#if defined(__x86_64__) || defined(__i386__)

#include "ec/gf256.hpp"
#include "ec/kernels.hpp"

#include <immintrin.h>

namespace declust::ec {

void
xorIntoAvx2(std::uint8_t *dst, const std::uint8_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 128 <= n; i += 128) {
        __m256i d0 = _mm256_loadu_si256((const __m256i *)(dst + i));
        __m256i d1 = _mm256_loadu_si256((const __m256i *)(dst + i + 32));
        __m256i d2 = _mm256_loadu_si256((const __m256i *)(dst + i + 64));
        __m256i d3 = _mm256_loadu_si256((const __m256i *)(dst + i + 96));
        __m256i s0 = _mm256_loadu_si256((const __m256i *)(src + i));
        __m256i s1 = _mm256_loadu_si256((const __m256i *)(src + i + 32));
        __m256i s2 = _mm256_loadu_si256((const __m256i *)(src + i + 64));
        __m256i s3 = _mm256_loadu_si256((const __m256i *)(src + i + 96));
        _mm256_storeu_si256((__m256i *)(dst + i), _mm256_xor_si256(d0, s0));
        _mm256_storeu_si256((__m256i *)(dst + i + 32),
                            _mm256_xor_si256(d1, s1));
        _mm256_storeu_si256((__m256i *)(dst + i + 64),
                            _mm256_xor_si256(d2, s2));
        _mm256_storeu_si256((__m256i *)(dst + i + 96),
                            _mm256_xor_si256(d3, s3));
    }
    for (; i + 32 <= n; i += 32) {
        __m256i d = _mm256_loadu_si256((const __m256i *)(dst + i));
        __m256i s = _mm256_loadu_si256((const __m256i *)(src + i));
        _mm256_storeu_si256((__m256i *)(dst + i), _mm256_xor_si256(d, s));
    }
    for (; i < n; ++i)
        dst[i] ^= src[i];
}

namespace {

inline __m256i
gfStep256(__m256i x, __m256i tblLo, __m256i tblHi, __m256i nibMask)
{
    __m256i lo = _mm256_and_si256(x, nibMask);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi16(x, 4), nibMask);
    return _mm256_xor_si256(_mm256_shuffle_epi8(tblLo, lo),
                            _mm256_shuffle_epi8(tblHi, hi));
}

/** The 16-byte nibble table broadcast into both 128-bit lanes. */
inline __m256i
broadcastTable(const std::uint8_t *tbl16)
{
    __m128i t = _mm_loadu_si128((const __m128i *)tbl16);
    return _mm256_broadcastsi128_si256(t);
}

} // namespace

void
gfMulAvx2(std::uint8_t *dst, const std::uint8_t *src, std::uint8_t c,
          std::size_t n)
{
    const GfTables &t = gfTables();
    const __m256i tblLo = broadcastTable(t.shuffleLo[c]);
    const __m256i tblHi = broadcastTable(t.shuffleHi[c]);
    const __m256i nibMask = _mm256_set1_epi8(0x0f);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i x = _mm256_loadu_si256((const __m256i *)(src + i));
        _mm256_storeu_si256((__m256i *)(dst + i),
                            gfStep256(x, tblLo, tblHi, nibMask));
    }
    const std::uint8_t *row = t.mul[c];
    for (; i < n; ++i)
        dst[i] = row[src[i]];
}

void
gfMulAddAvx2(std::uint8_t *dst, const std::uint8_t *src, std::uint8_t c,
             std::size_t n)
{
    const GfTables &t = gfTables();
    const __m256i tblLo = broadcastTable(t.shuffleLo[c]);
    const __m256i tblHi = broadcastTable(t.shuffleHi[c]);
    const __m256i nibMask = _mm256_set1_epi8(0x0f);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i x = _mm256_loadu_si256((const __m256i *)(src + i));
        __m256i d = _mm256_loadu_si256((const __m256i *)(dst + i));
        __m256i p = gfStep256(x, tblLo, tblHi, nibMask);
        _mm256_storeu_si256((__m256i *)(dst + i), _mm256_xor_si256(d, p));
    }
    const std::uint8_t *row = t.mul[c];
    for (; i < n; ++i)
        dst[i] ^= row[src[i]];
}

} // namespace declust::ec

#endif // x86

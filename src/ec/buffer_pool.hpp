/**
 * @file
 * Slab-pooled, 64-byte-aligned stripe-unit buffers for the data plane.
 *
 * The verify/on data-plane modes XOR real bytes at every parity combine
 * site, which runs inside the zero-allocation I/O spine — so buffers
 * come from a free list carved out of slabs, exactly like SlabPool, but
 * with cache-line alignment so the SIMD kernels run their aligned fast
 * path. Steady state is two pointer writes per acquire/release; slabs
 * are only allocated while the pool warms up.
 *
 * Alignment is done by hand (over-allocate + round up) on top of plain
 * `::operator new` rather than the aligned-new overload: the repo's
 * allocation-guard test interposes only the unaligned global operator
 * new, and warm-up allocations must stay visible to it so "zero
 * steady-state allocations" is a provable claim, not a blind spot.
 *
 * Not thread-safe, by design: one pool per ArrayController, confined to
 * that controller's event thread like every other pool in the spine.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/annotations.hpp"
#include "util/error.hpp"

namespace declust::ec {

/** Free-list pool of fixed-size cache-line-aligned byte buffers. */
class BufferPool
{
  public:
    static constexpr std::size_t kAlignment = 64;

    /**
     * @param bufferBytes Usable bytes per buffer (the stripe-unit
     *        size); rounded up to a multiple of kAlignment so buffers
     *        stay mutually aligned within a slab.
     * @param buffersPerSlab Buffers carved from each backing
     *        allocation.
     */
    explicit BufferPool(std::size_t bufferBytes,
                        std::size_t buffersPerSlab = 16)
        : stride_((bufferBytes + kAlignment - 1) / kAlignment * kAlignment),
          buffersPerSlab_(buffersPerSlab)
    {
        DECLUST_ASSERT(bufferBytes > 0, "empty data-plane buffer");
        DECLUST_ASSERT(buffersPerSlab_ > 0, "empty data-plane slab");
    }

    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;

    /** Pop an aligned buffer, growing by one slab if the list is dry. */
    DECLUST_HOT_PATH
    std::uint8_t *
    acquire()
    {
        if (!free_)
            grow();
        FreeNode *node = free_;
        free_ = node->next;
        ++live_;
        return reinterpret_cast<std::uint8_t *>(node);
    }

    /** Return @p p (obtained from acquire()) to the free list. */
    DECLUST_HOT_PATH
    void
    release(std::uint8_t *p)
    {
        DECLUST_DEBUG_ASSERT(p != nullptr, "releasing null buffer");
        auto *node = reinterpret_cast<FreeNode *>(p);
        node->next = free_;
        free_ = node;
        --live_;
    }

    /** Bytes per buffer (the rounded-up stride). */
    std::size_t bufferBytes() const { return stride_; }

    /** Buffers currently handed out. */
    std::size_t liveBuffers() const { return live_; }

    /** Backing slab allocations made so far. */
    std::size_t slabCount() const { return slabs_.size(); }

  private:
    struct FreeNode
    {
        FreeNode *next;
    };

    void
    grow()
    {
        // Warm-up growth path, O(1) slabs per run (see SlabPool::grow).
        const std::size_t bytes = stride_ * buffersPerSlab_ + kAlignment;
        DECLUST_ANALYZE_SUPPRESS(
            "hot-path-growth: slab warm-up");
        slabs_.emplace_back(
            static_cast<std::byte *>(::operator new(bytes)));
        auto base = reinterpret_cast<std::uintptr_t>(slabs_.back().get());
        const std::uintptr_t aligned =
            (base + kAlignment - 1) / kAlignment * kAlignment;
        for (std::size_t i = buffersPerSlab_; i-- > 0;) {
            auto *node =
                reinterpret_cast<FreeNode *>(aligned + i * stride_);
            node->next = free_;
            free_ = node;
        }
    }

    struct OpDelete
    {
        void operator()(std::byte *p) const { ::operator delete(p); }
    };

    std::size_t stride_;
    std::size_t buffersPerSlab_;
    std::vector<std::unique_ptr<std::byte[], OpDelete>> slabs_;
    FreeNode *free_ = nullptr;
    std::size_t live_ = 0;
};

/** RAII lease of one pooled buffer for a synchronous combine check. */
class BufferLease
{
  public:
    explicit BufferLease(BufferPool &pool)
        : pool_(pool), p_(pool.acquire())
    {
    }
    ~BufferLease() { pool_.release(p_); }
    BufferLease(const BufferLease &) = delete;
    BufferLease &operator=(const BufferLease &) = delete;

    std::uint8_t *get() const { return p_; }

  private:
    BufferPool &pool_;
    std::uint8_t *p_;
};

} // namespace declust::ec

/**
 * @file
 * Optional real-bytes data plane for the array controller.
 *
 * The simulator's at-rest state stays 64-bit unit values (contents.hpp)
 * — materializing every unit's bytes would cost hundreds of MB at
 * figure-8 scale. Instead the byte image of a unit is *generative*: a
 * GF(2)-linear expansion of its value,
 *
 *     word[i] = rotl64(value, (i * 29) & 63)        (word 0 == value)
 *
 * Linearity gives expand(a) ^ expand(b) == expand(a ^ b), and word 0
 * makes the map injective — so XORing the real byte images of a parity
 * combine's inputs must land exactly on the byte image of the 64-bit
 * expected value, and one memcmp proves 4096 bytes of real SIMD parity
 * math agree with the ShadowModel. The rotation stride (29, coprime to
 * 64) spreads each value bit across different bit positions in every
 * word, so a kernel bug that garbles lanes, misses a tail, or swaps
 * operand halves cannot cancel out.
 *
 * Modes (DataPlaneMode): Off — no buffers touched, byte-identical to
 * the pre-data-plane goldens; Verify — every combine site XORs real
 * pooled buffers through the dispatched SIMD kernels and cross-checks
 * against the shadow value (zero effect on simulated time, so goldens
 * still match); On — Verify plus simulated XOR cost charged from the
 * measured kernel throughput (cost_model.hpp) instead of the
 * hand-picked xorOverheadMsPerUnit.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "ec/buffer_pool.hpp"
#include "ec/kernels.hpp"
#include "util/annotations.hpp"

namespace declust::ec {

/** How much real work the controller's parity path performs. */
enum class DataPlaneMode : int
{
    Off = 0,    ///< value-level shadow math only (default)
    Verify = 1, ///< real SIMD byte math cross-checked, no timing change
    On = 2,     ///< Verify + calibrated XOR cost charged to the CPU
};

/** CLI/display name: off | verify | on. */
const char *dataPlaneModeName(DataPlaneMode mode);

/** Parse a mode name; false on an unknown spelling. */
bool dataPlaneModeFromName(const std::string &name, DataPlaneMode *out);

/** Process-wide default mode used by newly built simulations
 * (selectDataPlane; initially Off). Mirrors harness::selectEventQueue:
 * drivers set it once from --data-plane and every SimConfig picks it
 * up without per-driver plumbing. */
DataPlaneMode defaultDataPlaneMode();

/** Set the process-wide default mode. */
void selectDataPlane(DataPlaneMode mode);

/**
 * Per-controller engine: buffer pool + dispatched kernels + counters.
 * All checks are synchronous (acquire, expand, XOR, compare, release
 * within one call), so the pool's steady state is two leased buffers
 * deep and allocation-free after warm-up.
 */
class DataPlane
{
  public:
    struct Stats
    {
        std::uint64_t combinesChecked = 0; ///< cross-checked combines
        std::uint64_t unitsXored = 0;      ///< source units streamed
        std::uint64_t bytesXored = 0;      ///< bytes through xorInto
    };

    /** @param unitBytes Stripe-unit size in bytes (multiple of 8). */
    DataPlane(DataPlaneMode mode, std::size_t unitBytes);

    DataPlaneMode mode() const { return mode_; }
    std::size_t unitBytes() const { return unitBytes_; }
    const Stats &stats() const { return stats_; }
    Tier tier() const { return kernels_.tier; }

    /**
     * Verify one parity combine with real bytes: expand the @p count
     * source values at @p vals, XOR them through the SIMD kernels, and
     * panic (InternalError) unless the result is byte-for-byte the
     * expansion of @p expected. @p site names the combine in the
     * diagnostic (e.g. "degraded-read"). count == 0 checks
     * expected == 0 (an empty XOR), matching xorStripeExcept's
     * identity.
     */
    DECLUST_HOT_PATH
    void checkCombine(const char *site, const std::uint64_t *vals,
                      int count, std::uint64_t expected);

    /** Write the byte expansion of @p v into @p dst (unitBytes long). */
    DECLUST_HOT_PATH
    void expandInto(std::uint8_t *dst, std::uint64_t v) const;

  private:
    DataPlaneMode mode_;
    std::size_t unitBytes_;
    const Kernels &kernels_;
    BufferPool pool_;
    Stats stats_;
};

} // namespace declust::ec

/**
 * @file
 * 512-bit AVX-512 kernels. Requires F (loads, ternlog XOR) and BW (the
 * 512-bit VPSHUFB); dispatch.cpp checks both before selecting the tier.
 *
 * Compiled with -mavx512f -mavx512bw (see src/ec/CMakeLists.txt).
 */
#if defined(__x86_64__) || defined(__i386__)

#include "ec/gf256.hpp"
#include "ec/kernels.hpp"

#include <immintrin.h>

namespace declust::ec {

void
xorIntoAvx512(std::uint8_t *dst, const std::uint8_t *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 128 <= n; i += 128) {
        __m512i d0 = _mm512_loadu_si512(dst + i);
        __m512i d1 = _mm512_loadu_si512(dst + i + 64);
        __m512i s0 = _mm512_loadu_si512(src + i);
        __m512i s1 = _mm512_loadu_si512(src + i + 64);
        _mm512_storeu_si512(dst + i, _mm512_xor_si512(d0, s0));
        _mm512_storeu_si512(dst + i + 64, _mm512_xor_si512(d1, s1));
    }
    for (; i + 64 <= n; i += 64) {
        __m512i d = _mm512_loadu_si512(dst + i);
        __m512i s = _mm512_loadu_si512(src + i);
        _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, s));
    }
    for (; i < n; ++i)
        dst[i] ^= src[i];
}

namespace {

inline __m512i
gfStep512(__m512i x, __m512i tblLo, __m512i tblHi, __m512i nibMask)
{
    __m512i lo = _mm512_and_si512(x, nibMask);
    __m512i hi = _mm512_and_si512(_mm512_srli_epi16(x, 4), nibMask);
    return _mm512_xor_si512(_mm512_shuffle_epi8(tblLo, lo),
                            _mm512_shuffle_epi8(tblHi, hi));
}

/** The 16-byte nibble table broadcast into all four 128-bit lanes. */
inline __m512i
broadcastTable512(const std::uint8_t *tbl16)
{
    __m128i t = _mm_loadu_si128((const __m128i *)tbl16);
    return _mm512_broadcast_i32x4(t);
}

} // namespace

void
gfMulAvx512(std::uint8_t *dst, const std::uint8_t *src, std::uint8_t c,
            std::size_t n)
{
    const GfTables &t = gfTables();
    const __m512i tblLo = broadcastTable512(t.shuffleLo[c]);
    const __m512i tblHi = broadcastTable512(t.shuffleHi[c]);
    const __m512i nibMask = _mm512_set1_epi8(0x0f);
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        __m512i x = _mm512_loadu_si512(src + i);
        _mm512_storeu_si512(dst + i, gfStep512(x, tblLo, tblHi, nibMask));
    }
    const std::uint8_t *row = t.mul[c];
    for (; i < n; ++i)
        dst[i] = row[src[i]];
}

void
gfMulAddAvx512(std::uint8_t *dst, const std::uint8_t *src, std::uint8_t c,
               std::size_t n)
{
    const GfTables &t = gfTables();
    const __m512i tblLo = broadcastTable512(t.shuffleLo[c]);
    const __m512i tblHi = broadcastTable512(t.shuffleHi[c]);
    const __m512i nibMask = _mm512_set1_epi8(0x0f);
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        __m512i x = _mm512_loadu_si512(src + i);
        __m512i d = _mm512_loadu_si512(dst + i);
        _mm512_storeu_si512(
            dst + i,
            _mm512_xor_si512(d, gfStep512(x, tblLo, tblHi, nibMask)));
    }
    const std::uint8_t *row = t.mul[c];
    for (; i < n; ++i)
        dst[i] ^= row[src[i]];
}

} // namespace declust::ec

#endif // x86

#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace declust {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    DECLUST_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    DECLUST_ASSERT(cells.size() == headers_.size(),
                   "row width ", cells.size(), " != header width ",
                   headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            os.width(static_cast<std::streamsize>(width[c]));
            os << row[c];
        }
        os << "\n";
    };

    emit(headers_);
    std::string rule;
    for (size_t c = 0; c < width.size(); ++c) {
        if (c)
            rule += "  ";
        rule += std::string(width[c], '-');
    }
    os << rule << "\n";
    for (const auto &row : rows_)
        emit(row);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << row[c];
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmtDouble(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

} // namespace declust

/**
 * @file
 * Error-handling primitives for the declust library.
 *
 * Following the simulator convention (cf. gem5's logging.hh):
 *  - panic():  an internal invariant was violated; this is a library bug.
 *  - fatal():  the caller supplied an impossible configuration; this is a
 *              user error, reported without a core dump.
 */
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace declust {

/** Exception raised for user/configuration errors (fatal()). */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Exception raised for internal invariant violations (panic()). */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &what)
        : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Varargs-to-string helper used by the panic/fatal macros. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace declust

/** Abort with a message: internal invariant violated (library bug). */
#define DECLUST_PANIC(...)                                                  \
    ::declust::detail::panicImpl(__FILE__, __LINE__,                        \
                                 ::declust::detail::concat(__VA_ARGS__))

/** Abort with a message: impossible user configuration. */
#define DECLUST_FATAL(...)                                                  \
    ::declust::detail::fatalImpl(__FILE__, __LINE__,                        \
                                 ::declust::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; always on (simulation correctness). */
#define DECLUST_ASSERT(cond, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            DECLUST_PANIC("assertion failed: " #cond " ", __VA_ARGS__);     \
        }                                                                   \
    } while (0)

/**
 * Assert on hot paths: active in debug builds, compiled out (condition
 * unevaluated) under NDEBUG so per-access mapping and event dispatch pay
 * nothing in release.
 */
#ifdef NDEBUG
#define DECLUST_DEBUG_ASSERT(cond, ...)                                     \
    do {                                                                    \
        (void)sizeof(cond);                                                 \
    } while (0)
#else
#define DECLUST_DEBUG_ASSERT(cond, ...) DECLUST_ASSERT(cond, __VA_ARGS__)
#endif

#include "util/error.hpp"

namespace declust {
namespace detail {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << file << ":" << line << ": " << msg;
    throw InternalError(os.str());
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << file << ":" << line << ": " << msg;
    throw ConfigError(os.str());
}

} // namespace detail
} // namespace declust

/**
 * @file
 * Minimal leveled logging to stderr.
 *
 * Logging defaults to Warn so simulations stay quiet; benches and examples
 * may raise the level for progress reporting (or via DECLUST_LOG=debug).
 */
#pragma once

#include <sstream>
#include <string>

namespace declust {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Set the global log threshold. */
void setLogLevel(LogLevel level);

/** Current global log threshold (initialized from env DECLUST_LOG). */
LogLevel logLevel();

/** Emit one log line if @p level passes the threshold. */
void logMessage(LogLevel level, const std::string &msg);

namespace detail {

template <typename... Args>
void
logFmt(LogLevel level, Args &&...args)
{
    if (level < logLevel())
        return;
    std::ostringstream os;
    (os << ... << args);
    logMessage(level, os.str());
}

} // namespace detail

template <typename... Args>
void logDebug(Args &&...a)
{ detail::logFmt(LogLevel::Debug, std::forward<Args>(a)...); }

template <typename... Args>
void logInfo(Args &&...a)
{ detail::logFmt(LogLevel::Info, std::forward<Args>(a)...); }

template <typename... Args>
void logWarn(Args &&...a)
{ detail::logFmt(LogLevel::Warn, std::forward<Args>(a)...); }

template <typename... Args>
void logError(Args &&...a)
{ detail::logFmt(LogLevel::Error, std::forward<Args>(a)...); }

} // namespace declust

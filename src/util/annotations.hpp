/**
 * @file
 * Source annotations consumed by the AST analyzer (tools/analyze/).
 *
 * The repo enforces its invariants in three layers (see DESIGN.md
 * "Static analysis"): a regex lint (tools/lint.py) for purely textual
 * rules, the AST analyzer for semantic rules, and runtime
 * DECLUST_VALIDATE audits for what only execution can see. The two
 * macros here are the analyzer's source-level interface:
 *
 *   DECLUST_HOT_PATH
 *     Marks a function as a hot-path ROOT. The analyzer computes the
 *     closure of everything reachable from annotated roots — direct
 *     calls plus named continuation handoffs (`&stepFn`, function
 *     pointers stored into resume slots) — and rejects heap
 *     allocation, container growth, and std::function conversions
 *     anywhere in that closure. Under clang the macro also expands to
 *     a real [[clang::annotate]] attribute so libclang-based tooling
 *     sees the same roots; under other compilers it expands to
 *     nothing and only the analyzer's own parser reads it.
 *
 *   DECLUST_ANALYZE_SUPPRESS("rule-a,rule-b: reason")
 *     Statement-position suppression, replacing the old
 *     `// LINT: allow(...)` comments for analyzer rules. Suppresses
 *     the listed rules on the macro call's own lines and on every
 *     line of the statement that follows it, so it reads like the
 *     construct it excuses:
 *
 *         DECLUST_ANALYZE_SUPPRESS("hot-path-growth: slab warm-up");
 *         slabs_.push_back(makeSlab());
 *
 *     The reason after the colon is mandatory by convention: every
 *     suppression is a documented, deliberate exception, reviewable
 *     with `git grep DECLUST_ANALYZE_SUPPRESS`. The macro compiles to
 *     nothing; the string never reaches the binary.
 */
#pragma once

#if defined(__clang__)
#define DECLUST_HOT_PATH [[clang::annotate("declust::hot_path")]]
#else
#define DECLUST_HOT_PATH
#endif

/** Expands to nothing; parsed by tools/analyze/ for rule suppression. */
#define DECLUST_ANALYZE_SUPPRESS(rules_and_reason) static_assert(true, "")

#include "util/log.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace declust {

namespace {

LogLevel
initialLevel()
{
    const char *env = std::getenv("DECLUST_LOG");
    if (!env)
        return LogLevel::Warn;
    if (!std::strcmp(env, "debug")) return LogLevel::Debug;
    if (!std::strcmp(env, "info"))  return LogLevel::Info;
    if (!std::strcmp(env, "warn"))  return LogLevel::Warn;
    if (!std::strcmp(env, "error")) return LogLevel::Error;
    if (!std::strcmp(env, "off"))   return LogLevel::Off;
    return LogLevel::Warn;
}

LogLevel &
levelRef()
{
    static LogLevel level = initialLevel();
    return level;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
      default:              return "?";
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    levelRef() = level;
}

LogLevel
logLevel()
{
    return levelRef();
}

void
logMessage(LogLevel level, const std::string &msg)
{
    std::cerr << "[declust:" << levelName(level) << "] " << msg << "\n";
}

} // namespace declust

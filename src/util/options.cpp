#include "util/options.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/error.hpp"

namespace declust {

Options::Options(std::string description)
    : description_(std::move(description))
{
}

void
Options::add(const std::string &name, const std::string &defaultValue,
             const std::string &help)
{
    DECLUST_ASSERT(!opts_.count(name), "duplicate option --", name);
    opts_[name] = Opt{defaultValue, help, false};
    order_.push_back(name);
}

void
Options::addFlag(const std::string &name, const std::string &help)
{
    DECLUST_ASSERT(!opts_.count(name), "duplicate option --", name);
    opts_[name] = Opt{"0", help, true};
    order_.push_back(name);
}

bool
Options::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            std::cerr << "unexpected argument: " << arg << "\n";
            printUsage(argv[0]);
            return false;
        }
        std::string name = arg.substr(2);
        std::string inlineValue;
        bool hasInline = false;
        if (auto eq = name.find('='); eq != std::string::npos) {
            inlineValue = name.substr(eq + 1);
            name = name.substr(0, eq);
            hasInline = true;
        }
        auto it = opts_.find(name);
        if (it == opts_.end()) {
            std::cerr << "unknown option: --" << name << "\n";
            printUsage(argv[0]);
            return false;
        }
        if (it->second.isFlag) {
            it->second.value = hasInline ? inlineValue : "1";
        } else if (hasInline) {
            it->second.value = inlineValue;
        } else {
            if (i + 1 >= argc) {
                std::cerr << "option --" << name << " needs a value\n";
                return false;
            }
            it->second.value = argv[++i];
        }
    }
    return true;
}

bool
Options::has(const std::string &name) const
{
    return opts_.find(name) != opts_.end();
}

std::string
Options::getString(const std::string &name) const
{
    auto it = opts_.find(name);
    DECLUST_ASSERT(it != opts_.end(), "unregistered option --", name);
    return it->second.value;
}

long
Options::getInt(const std::string &name) const
{
    return std::strtol(getString(name).c_str(), nullptr, 10);
}

double
Options::getDouble(const std::string &name) const
{
    return std::strtod(getString(name).c_str(), nullptr);
}

bool
Options::getFlag(const std::string &name) const
{
    std::string v = getString(name);
    return v == "1" || v == "true" || v == "yes";
}

std::vector<double>
Options::getDoubleList(const std::string &name) const
{
    std::vector<double> out;
    std::stringstream ss(getString(name));
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(std::strtod(item.c_str(), nullptr));
    return out;
}

std::vector<long>
Options::getIntList(const std::string &name) const
{
    std::vector<long> out;
    std::stringstream ss(getString(name));
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(std::strtol(item.c_str(), nullptr, 10));
    return out;
}

void
Options::printUsage(const char *prog) const
{
    std::cerr << description_ << "\n\nusage: " << prog << " [options]\n";
    for (const auto &name : order_) {
        const Opt &o = opts_.at(name);
        std::cerr << "  --" << name;
        if (!o.isFlag)
            std::cerr << " <value> (default: " << o.value << ")";
        std::cerr << "\n      " << o.help << "\n";
    }
}

} // namespace declust

/**
 * @file
 * Tiny command-line option parser shared by benches and examples.
 *
 * Supports `--name value` and `--flag` styles plus `--help` generation.
 * All experiment binaries accept the same scaling knobs through this.
 */
#pragma once

#include <map>
#include <string>
#include <vector>

namespace declust {

/** Declarative command-line parser: register options, then parse(). */
class Options
{
  public:
    /** @param description One-line program description for --help. */
    explicit Options(std::string description);

    /** Register an option taking a value, with a default. */
    void add(const std::string &name, const std::string &defaultValue,
             const std::string &help);

    /** Register a boolean flag (defaults to false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. Returns false (after printing usage) if --help was given
     * or an unknown option was seen.
     */
    bool parse(int argc, char **argv);

    /** True if @p name was registered (shared helpers use this to act
     * only on the options a driver actually declared). */
    bool has(const std::string &name) const;

    /** @{ Typed accessors for parsed (or default) values. */
    std::string getString(const std::string &name) const;
    long getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;
    /** @} */

    /** Parse a comma-separated list of doubles from an option value. */
    std::vector<double> getDoubleList(const std::string &name) const;

    /** Parse a comma-separated list of longs from an option value. */
    std::vector<long> getIntList(const std::string &name) const;

  private:
    struct Opt
    {
        std::string value;
        std::string help;
        bool isFlag = false;
    };

    void printUsage(const char *prog) const;

    std::string description_;
    std::map<std::string, Opt> opts_;
    std::vector<std::string> order_;
};

} // namespace declust

/**
 * @file
 * Plain-text and CSV table formatting for bench output.
 *
 * Benches reproduce paper tables/figures as rows of numbers; TablePrinter
 * right-aligns columns for the console and can also emit CSV so results can
 * be re-plotted.
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace declust {

/** Accumulates rows of stringified cells and renders them aligned. */
class TablePrinter
{
  public:
    /** @param headers Column headers, defining column count. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a fully-stringified row; must match header width. */
    void addRow(std::vector<std::string> cells);

    /** Render with padded columns to @p os. */
    void print(std::ostream &os) const;

    /** Render as CSV to @p os. */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p prec digits after the decimal point. */
std::string fmtDouble(double v, int prec = 2);

} // namespace declust

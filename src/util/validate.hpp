/**
 * @file
 * Compile-time-gated validation layer for the simulator's invariants.
 *
 * The zero-allocation I/O spine (slab-pooled IoOps, raw {fn,ctx}
 * completion slots, intrusive stripe-lock waiters) is opaque to ASan:
 * a use-after-release inside a pool reuses perfectly valid memory, and
 * the (when, seq) determinism contract of the event queue is a pure
 * ordering property no sanitizer can see. Building with
 * -DDECLUST_VALIDATE=ON compiles structural checks into exactly those
 * blind spots:
 *
 *  - slab pools poison freed chunks, tag them with generations, and
 *    panic on double-free, foreign-pointer free, and poison damage
 *    (a write into freed pool memory);
 *  - the event queue enforces strict (when, seq) dispatch monotonicity
 *    and refuses to schedule into the past (no release-mode clamping);
 *  - the stripe-lock table tracks holders and audits wait-list
 *    structure on every acquire/release;
 *  - the disk model range-checks CHS decode, service times, and head
 *    position on every access.
 *
 * Every violation is a fatal diagnostic (DECLUST_PANIC -> InternalError)
 * carrying the op/stripe/disk context of the failing site. With the
 * option OFF (the default) every macro below compiles to ((void)0) and
 * every #if-gated member disappears: the Release hot path is unchanged,
 * which ci/check_perf.py and the golden-table comparison enforce.
 *
 * The mode mirrors DECLUST_PERF_COUNTERS: a whole-build switch, not a
 * runtime flag, so the checks cost nothing to a production build and
 * cannot be accidentally left enabled in a timed run (EXPERIMENTS.md
 * records the measured overhead).
 */
#pragma once

#include <cstdint>

#include "util/error.hpp"

#ifndef DECLUST_VALIDATE
#define DECLUST_VALIDATE 0
#endif

namespace declust {

/** True when the validation checks are compiled in. */
constexpr bool
validateEnabled()
{
    return DECLUST_VALIDATE != 0;
}

/** Byte written over every freed pool chunk (beyond the free-list link). */
inline constexpr std::uint8_t kPoisonByte = 0xA5;

/** The poison pattern as a pointer-sized word, for cheap "does this
 * field look like freed pool memory?" tripwires on continuation entry. */
inline constexpr std::uintptr_t kPoisonWord =
    static_cast<std::uintptr_t>(0xA5A5A5A5A5A5A5A5ull);

/** True if @p p bit-matches the pool poison pattern — i.e. it was read
 * out of a chunk that has been released (and not since reallocated). */
template <typename T>
constexpr bool
looksPoisoned(T *p)
{
    return reinterpret_cast<std::uintptr_t>(p) == kPoisonWord;
}

} // namespace declust

#if DECLUST_VALIDATE

/** Assert a validation invariant; fatal (InternalError) on violation. */
#define DECLUST_VALIDATE_CHECK(cond, ...)                                   \
    do {                                                                    \
        if (!(cond)) {                                                      \
            DECLUST_PANIC("validation failed: " #cond " ", __VA_ARGS__);    \
        }                                                                   \
    } while (0)

#else

#define DECLUST_VALIDATE_CHECK(cond, ...) ((void)0)

#endif

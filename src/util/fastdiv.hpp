/**
 * @file
 * Strength-reduced division by a runtime-fixed divisor.
 *
 * The layout hot path divides every access's stripe index by the block
 * design table size — a divisor fixed at layout construction but unknown
 * at compile time, so the compiler emits a hardware divide (20-40
 * cycles). FastDiv precomputes the Lemire round-up reciprocal
 * ("Faster remainder by direct computation", Lemire et al., 2019):
 * quotient and remainder each become one widening multiply.
 *
 * Exact for 32-bit dividends; the 64-bit helpers fall back to hardware
 * division for dividends >= 2^32 (never hit by realistic geometries but
 * keeps the class total).
 */
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace declust {

/** Divide/modulo by a fixed 32-bit divisor via multiply-shift. */
class FastDiv
{
  public:
    FastDiv() = default;

    explicit FastDiv(std::uint32_t divisor) : divisor_(divisor)
    {
        DECLUST_ASSERT(divisor > 0, "FastDiv by zero");
        // ceil(2^64 / d); d == 1 would overflow and is special-cased.
        if (divisor > 1)
            magic_ = ~std::uint64_t{0} / divisor + 1;
    }

    std::uint32_t divisor() const { return divisor_; }

    /** n / divisor, exact for any 32-bit n. */
    std::uint32_t
    quot(std::uint32_t n) const
    {
        if (divisor_ == 1)
            return n;
        return static_cast<std::uint32_t>(
            (static_cast<unsigned __int128>(magic_) * n) >> 64);
    }

    /** n % divisor, exact for any 32-bit n. */
    std::uint32_t
    rem(std::uint32_t n) const
    {
        if (divisor_ == 1)
            return 0;
        const std::uint64_t frac = magic_ * n;
        return static_cast<std::uint32_t>(
            (static_cast<unsigned __int128>(frac) * divisor_) >> 64);
    }

    /** n / divisor for non-negative 64-bit n (fast path below 2^32). */
    std::int64_t
    quot64(std::int64_t n) const
    {
        if (static_cast<std::uint64_t>(n) <= 0xffffffffull) [[likely]]
            return quot(static_cast<std::uint32_t>(n));
        return n / divisor_;
    }

    /** n % divisor for non-negative 64-bit n (fast path below 2^32). */
    std::int64_t
    rem64(std::int64_t n) const
    {
        if (static_cast<std::uint64_t>(n) <= 0xffffffffull) [[likely]]
            return rem(static_cast<std::uint32_t>(n));
        return n % divisor_;
    }

  private:
    std::uint64_t magic_ = 0;
    std::uint32_t divisor_ = 1;
};

} // namespace declust

/**
 * @file
 * Trace-driven workload replay.
 *
 * Complements the synthetic generators with deterministic replay of a
 * recorded access trace — the standard way to evaluate an array against
 * a production workload. The text format is one access per line:
 *
 *     <time-seconds> <R|W> <first-data-unit> [<unit-count>]
 *
 * with '#' comment lines. Records must be sorted by time; unit count
 * defaults to 1. Replay is open-loop: each record is issued at its
 * recorded time regardless of earlier completions.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "array/controller.hpp"
#include "array/types.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace declust {

/** One parsed trace record. */
struct TraceRecord
{
    double timeSec = 0.0;
    RequestKind kind = RequestKind::Read;
    std::int64_t firstUnit = 0;
    int unitCount = 1;

    bool operator==(const TraceRecord &) const = default;
};

/**
 * Parse a trace from a stream. Throws ConfigError on malformed input
 * (bad op code, negative values, out-of-order timestamps).
 */
std::vector<TraceRecord> parseTrace(std::istream &in);

/** Parse a trace from a file path. */
std::vector<TraceRecord> loadTrace(const std::string &path);

/** Serialize records in the canonical text format. */
void writeTrace(std::ostream &out, const std::vector<TraceRecord> &records);

/** Open-loop replayer bound to one array. */
class TraceWorkload
{
  public:
    /**
     * @param eq Event queue; replay times are offsets from start().
     * @param array Target array; units must be within its data space.
     * @param records Sorted trace (validated on construction).
     */
    TraceWorkload(EventQueue &eq, ArrayController &array,
                  std::vector<TraceRecord> records);

    /** Schedule every record relative to now. */
    void start();

    std::uint64_t issued() const { return issued_; }
    std::uint64_t completed() const { return completed_; }
    bool done() const { return completed_ == records_.size(); }

  private:
    void scheduleRecord(std::size_t index, Tick base);

    EventQueue &eq_;
    ArrayController &array_;
    std::vector<TraceRecord> records_;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    bool started_ = false;
};

} // namespace declust

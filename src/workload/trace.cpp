#include "workload/trace.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace declust {

std::vector<TraceRecord>
parseTrace(std::istream &in)
{
    std::vector<TraceRecord> records;
    std::string line;
    int lineNo = 0;
    double lastTime = -1.0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto firstNonSpace = line.find_first_not_of(" \t\r");
        if (firstNonSpace == std::string::npos ||
            line[firstNonSpace] == '#')
            continue;
        std::istringstream ls(line);
        TraceRecord rec;
        std::string op;
        ls >> rec.timeSec >> op >> rec.firstUnit;
        if (!ls)
            DECLUST_FATAL("trace line ", lineNo, ": malformed record");
        if (!(ls >> rec.unitCount))
            rec.unitCount = 1;
        if (op == "R" || op == "r") {
            rec.kind = RequestKind::Read;
        } else if (op == "W" || op == "w") {
            rec.kind = RequestKind::Write;
        } else {
            DECLUST_FATAL("trace line ", lineNo, ": bad op '", op,
                          "' (want R or W)");
        }
        if (rec.timeSec < 0 || rec.firstUnit < 0 || rec.unitCount < 1)
            DECLUST_FATAL("trace line ", lineNo, ": negative field");
        if (rec.timeSec < lastTime)
            DECLUST_FATAL("trace line ", lineNo,
                          ": timestamps must be non-decreasing");
        lastTime = rec.timeSec;
        records.push_back(rec);
    }
    return records;
}

std::vector<TraceRecord>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DECLUST_FATAL("cannot open trace file '", path, "'");
    return parseTrace(in);
}

void
writeTrace(std::ostream &out, const std::vector<TraceRecord> &records)
{
    out << "# declust trace: <time-sec> <R|W> <first-unit> <count>\n";
    for (const TraceRecord &rec : records) {
        out << rec.timeSec << " "
            << (rec.kind == RequestKind::Read ? "R" : "W") << " "
            << rec.firstUnit << " " << rec.unitCount << "\n";
    }
}

TraceWorkload::TraceWorkload(EventQueue &eq, ArrayController &array,
                             std::vector<TraceRecord> records)
    : eq_(eq), array_(array), records_(std::move(records))
{
    for (const TraceRecord &rec : records_) {
        DECLUST_ASSERT(rec.firstUnit + rec.unitCount <=
                           array_.numDataUnits(),
                       "trace touches unit ", rec.firstUnit, "+",
                       rec.unitCount, " beyond the array's ",
                       array_.numDataUnits(), " data units");
    }
}

void
TraceWorkload::start()
{
    DECLUST_ASSERT(!started_, "trace replay can only start once");
    started_ = true;
    if (!records_.empty())
        scheduleRecord(0, eq_.now());
}

void
TraceWorkload::scheduleRecord(std::size_t index, Tick base)
{
    // Records are scheduled one at a time (timestamps are sorted), so a
    // large trace never floods the event heap.
    const TraceRecord &rec = records_[index];
    eq_.scheduleAt(base + secToTicks(rec.timeSec), [this, index, base] {
        const TraceRecord &r = records_[index];
        ++issued_;
        auto onDone = [this] { ++completed_; };
        if (r.kind == RequestKind::Read)
            array_.readUnits(r.firstUnit, r.unitCount, onDone);
        else
            array_.writeUnits(r.firstUnit, r.unitCount, onDone);
        if (index + 1 < records_.size())
            scheduleRecord(index + 1, base);
    });
}

} // namespace declust

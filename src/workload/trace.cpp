#include "workload/trace.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "array/controller.hpp"
#include "array/types.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "util/error.hpp"

namespace declust {

namespace {

// Full-token numeric conversion: the whole token must be consumed, so
// "5.7" is not silently truncated to an integer 5 and "3x" is an error
// rather than a 3. Every diagnostic carries the 1-based line number.

double
parseTimeToken(const std::string &tok, int lineNo)
{
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), value);
    if (ec != std::errc{} || end != tok.data() + tok.size())
        DECLUST_FATAL("trace line ", lineNo, ": bad timestamp '", tok,
                      "'");
    if (!std::isfinite(value) || value < 0)
        DECLUST_FATAL("trace line ", lineNo, ": timestamp '", tok,
                      "' must be finite and non-negative");
    return value;
}

std::int64_t
parseCountToken(const std::string &tok, const char *what,
                std::int64_t min, int lineNo)
{
    std::int64_t value = 0;
    const auto [end, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), value);
    if (ec != std::errc{} || end != tok.data() + tok.size())
        DECLUST_FATAL("trace line ", lineNo, ": bad ", what, " '", tok,
                      "'");
    if (value < min)
        DECLUST_FATAL("trace line ", lineNo, ": ", what, " '", tok,
                      "' must be >= ", min);
    return value;
}

} // namespace

std::vector<TraceRecord>
parseTrace(std::istream &in)
{
    std::vector<TraceRecord> records;
    std::string line;
    int lineNo = 0;
    double lastTime = -1.0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto firstNonSpace = line.find_first_not_of(" \t\r");
        if (firstNonSpace == std::string::npos ||
            line[firstNonSpace] == '#')
            continue;
        // Tokenize the whole line up front so extra fields are rejected
        // instead of silently ignored.
        std::istringstream ls(line);
        std::vector<std::string> toks;
        for (std::string tok; ls >> tok;)
            toks.push_back(std::move(tok));
        if (toks.size() < 3 || toks.size() > 4)
            DECLUST_FATAL("trace line ", lineNo, ": expected '<time> "
                          "<R|W> <first-unit> [<count>]', got ",
                          toks.size(), " fields");

        TraceRecord rec;
        rec.timeSec = parseTimeToken(toks[0], lineNo);
        if (toks[1] == "R" || toks[1] == "r") {
            rec.kind = RequestKind::Read;
        } else if (toks[1] == "W" || toks[1] == "w") {
            rec.kind = RequestKind::Write;
        } else {
            DECLUST_FATAL("trace line ", lineNo, ": bad op '", toks[1],
                          "' (want R or W)");
        }
        rec.firstUnit =
            parseCountToken(toks[2], "first unit", 0, lineNo);
        if (toks.size() == 4) {
            const std::int64_t count =
                parseCountToken(toks[3], "unit count", 1, lineNo);
            if (count > std::numeric_limits<int>::max())
                DECLUST_FATAL("trace line ", lineNo, ": unit count ",
                              count, " is out of range");
            rec.unitCount = static_cast<int>(count);
        } else {
            rec.unitCount = 1;
        }
        if (rec.timeSec < lastTime)
            DECLUST_FATAL("trace line ", lineNo, ": timestamp ",
                          rec.timeSec, " is out of order (previous "
                          "record at ", lastTime, ")");
        lastTime = rec.timeSec;
        records.push_back(rec);
    }
    return records;
}

std::vector<TraceRecord>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DECLUST_FATAL("cannot open trace file '", path, "'");
    return parseTrace(in);
}

void
writeTrace(std::ostream &out, const std::vector<TraceRecord> &records)
{
    out << "# declust trace: <time-sec> <R|W> <first-unit> <count>\n";
    for (const TraceRecord &rec : records) {
        out << rec.timeSec << " "
            << (rec.kind == RequestKind::Read ? "R" : "W") << " "
            << rec.firstUnit << " " << rec.unitCount << "\n";
    }
}

TraceWorkload::TraceWorkload(EventQueue &eq, ArrayController &array,
                             std::vector<TraceRecord> records)
    : eq_(eq), array_(array), records_(std::move(records))
{
    for (const TraceRecord &rec : records_) {
        if (rec.firstUnit + rec.unitCount > array_.numDataUnits())
            DECLUST_FATAL("trace touches unit ", rec.firstUnit, "+",
                          rec.unitCount, " beyond the array's ",
                          array_.numDataUnits(), " data units");
    }
}

void
TraceWorkload::start()
{
    DECLUST_ASSERT(!started_, "trace replay can only start once");
    started_ = true;
    if (!records_.empty())
        scheduleRecord(0, eq_.now());
}

void
TraceWorkload::scheduleRecord(std::size_t index, Tick base)
{
    // Records are scheduled one at a time (timestamps are sorted), so a
    // large trace never floods the event heap.
    const TraceRecord &rec = records_[index];
    eq_.scheduleAt(base + secToTicks(rec.timeSec), [this, index, base] {
        const TraceRecord &r = records_[index];
        ++issued_;
        auto onDone = [this] { ++completed_; };
        if (r.kind == RequestKind::Read)
            array_.readUnits(r.firstUnit, r.unitCount, onDone);
        else
            array_.writeUnits(r.firstUnit, r.unitCount, onDone);
        if (index + 1 < records_.size())
            scheduleRecord(index + 1, base);
    });
}

} // namespace declust

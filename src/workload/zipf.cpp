#include "workload/zipf.hpp"

#include <cmath>

#include "util/error.hpp"

namespace declust {

ZipfSampler::ZipfSampler(std::int64_t population, double alpha)
    : n_(population), alpha_(alpha)
{
    if (n_ < 1)
        DECLUST_FATAL("zipf population must be >= 1, got ", n_);
    if (n_ > INT32_MAX)
        DECLUST_FATAL("zipf population too large for alias table: ", n_);
    if (!(alpha_ >= 0.0))
        DECLUST_FATAL("zipf alpha must be >= 0, got ", alpha_);

    const auto n = static_cast<std::size_t>(n_);
    // Unnormalized weights, then the normalization constant. alpha == 0
    // degenerates to the uniform distribution exactly.
    std::vector<double> weight(n);
    for (std::size_t i = 0; i < n; ++i) {
        weight[i] = std::pow(static_cast<double>(i + 1), -alpha_);
        harmonic_ += weight[i];
    }

    // Vose's alias construction: scale each probability by n, then pair
    // every under-full column with an over-full donor. Index worklists
    // are plain vectors used as stacks; everything here is set-up cost,
    // freed on scope exit except the two tables draws touch.
    accept_.assign(n, 1.0);
    alias_.resize(n);
    std::vector<double> scaled(n);
    std::vector<std::int32_t> small;
    std::vector<std::int32_t> large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = weight[i] * static_cast<double>(n_) / harmonic_;
        (scaled[i] < 1.0 ? small : large)
            .push_back(static_cast<std::int32_t>(i));
    }
    for (std::size_t i = 0; i < n; ++i)
        alias_[i] = static_cast<std::int32_t>(i);
    while (!small.empty() && !large.empty()) {
        const std::int32_t s = small.back();
        const std::int32_t l = large.back();
        small.pop_back();
        large.pop_back();
        accept_[static_cast<std::size_t>(s)] =
            scaled[static_cast<std::size_t>(s)];
        alias_[static_cast<std::size_t>(s)] = l;
        scaled[static_cast<std::size_t>(l)] -=
            1.0 - scaled[static_cast<std::size_t>(s)];
        (scaled[static_cast<std::size_t>(l)] < 1.0 ? small : large)
            .push_back(l);
    }
    // Leftovers are numerically ~1; their alias is themselves.
    for (const std::int32_t i : small)
        accept_[static_cast<std::size_t>(i)] = 1.0;
    for (const std::int32_t i : large)
        accept_[static_cast<std::size_t>(i)] = 1.0;
}

double
ZipfSampler::probability(std::int64_t rank) const
{
    DECLUST_ASSERT(rank >= 0 && rank < n_, "rank out of range: ", rank);
    return std::pow(static_cast<double>(rank + 1), -alpha_) / harmonic_;
}

} // namespace declust

/**
 * @file
 * Seeded Zipf(alpha) popularity sampler over a bounded object
 * population.
 *
 * The cluster serving layer models a large user population whose
 * object popularity is heavy-tailed: rank i (0-based) is requested
 * with probability proportional to (i + 1)^-alpha. alpha = 0 is the
 * uniform distribution; the web-serving literature typically measures
 * alpha in [0.6, 1.1].
 *
 * Sampling uses Walker/Vose's alias method: the constructor builds an
 * acceptance/alias table in O(n), and each draw costs one uniformInt
 * plus one uniform double — O(1), branch-light, and free of
 * steady-state allocation, so the router can sit on the cluster hot
 * path. Construction is deterministic (no RNG); every draw consumes
 * exactly two distribution draws from the caller's Rng, whose seed
 * must be derived through sim/seed.hpp like every other stream in the
 * simulator.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "util/annotations.hpp"

namespace declust {

/** O(1) alias-method sampler for Zipf(alpha) ranks in [0, n). */
class ZipfSampler
{
  public:
    /**
     * @param population Number of ranks n (>= 1; <= 2^31 so alias
     *        indices fit an int32).
     * @param alpha Skew exponent (>= 0; 0 = uniform).
     */
    ZipfSampler(std::int64_t population, double alpha);

    /** Draw one rank in [0, population()); consumes exactly two RNG
     * values (one integer, one double) per call. */
    DECLUST_HOT_PATH
    std::int64_t
    sample(Rng &rng) const
    {
        const auto i = static_cast<std::size_t>(
            rng.uniformInt(static_cast<std::uint64_t>(n_)));
        return rng.uniform() < accept_[i]
                   ? static_cast<std::int64_t>(i)
                   : static_cast<std::int64_t>(alias_[i]);
    }

    /** Analytic probability of rank @p rank (for property tests). */
    double probability(std::int64_t rank) const;

    std::int64_t population() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    std::int64_t n_;
    double alpha_;
    /** Normalization constant: sum over ranks of (i+1)^-alpha. */
    double harmonic_ = 0.0;
    /** Vose tables: accept threshold and alias target per column. */
    std::vector<double> accept_;
    std::vector<std::int32_t> alias_;
};

} // namespace declust

#include "workload/closed_loop.hpp"

#include "array/controller.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "util/error.hpp"

namespace declust {

ClosedLoopWorkload::ClosedLoopWorkload(EventQueue &eq,
                                       ArrayController &array,
                                       const ClosedLoopConfig &config)
    : eq_(eq), array_(array), config_(config), rng_(config.seed)
{
    DECLUST_ASSERT(config_.clients >= 1, "need at least one client");
    DECLUST_ASSERT(config_.thinkTimeSec >= 0, "negative think time");
    DECLUST_ASSERT(config_.readFraction >= 0 && config_.readFraction <= 1,
                   "read fraction must be in [0,1]");
    DECLUST_ASSERT(config_.accessUnits >= 1, "empty accesses");
}

void
ClosedLoopWorkload::start()
{
    if (running_)
        return;
    running_ = true;
    ++epoch_;
    startedAt_ = eq_.now();
    completed_ = 0;
    for (int c = 0; c < config_.clients; ++c)
        clientLoop();
}

void
ClosedLoopWorkload::stop()
{
    running_ = false;
    ++epoch_;
}

double
ClosedLoopWorkload::throughput() const
{
    const Tick elapsed = eq_.now() - startedAt_;
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(completed_) / ticksToSec(elapsed);
}

void
ClosedLoopWorkload::clientLoop()
{
    if (!running_)
        return;
    const std::int64_t span =
        array_.numDataUnits() - config_.accessUnits + 1;
    const std::int64_t first = static_cast<std::int64_t>(
        rng_.uniformInt(static_cast<std::uint64_t>(span)));

    auto again = [this, epoch = epoch_] {
        ++completed_;
        if (epoch != epoch_ || !running_)
            return;
        if (config_.thinkTimeSec > 0) {
            const Tick think =
                secToTicks(rng_.exponential(config_.thinkTimeSec));
            eq_.scheduleIn(think, [this, epoch] {
                if (epoch == epoch_ && running_)
                    clientLoop();
            });
        } else {
            clientLoop();
        }
    };

    if (rng_.bernoulli(config_.readFraction))
        array_.readUnits(first, config_.accessUnits, again);
    else
        array_.writeUnits(first, config_.accessUnits, again);
}

} // namespace declust

/**
 * @file
 * Closed-loop workload generator.
 *
 * Models a fixed population of clients (multiprogramming level), each of
 * which issues its next access a think time after its previous one
 * completes — the standard OLTP client model, complementing the paper's
 * open Poisson arrivals. Useful for driving the array at saturation
 * without unbounded queue growth.
 */
#pragma once

#include <cstdint>

#include "array/controller.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace declust {

/** Closed-loop workload parameters. */
struct ClosedLoopConfig
{
    /** Concurrent clients. */
    int clients = 8;
    /** Mean exponential think time between an op's completion and the
     * client's next issue, seconds (0 = back-to-back). */
    double thinkTimeSec = 0.0;
    /** Fraction of accesses that are reads. */
    double readFraction = 0.5;
    /** Access size in stripe units. */
    int accessUnits = 1;
    std::uint64_t seed = 1;
};

/** Fixed-population generator bound to one array. */
class ClosedLoopWorkload
{
  public:
    ClosedLoopWorkload(EventQueue &eq, ArrayController &array,
                       const ClosedLoopConfig &config);

    /** Launch all clients (idempotent). */
    void start();

    /** Retire clients as their in-flight ops complete. */
    void stop();

    bool running() const { return running_; }
    std::uint64_t completed() const { return completed_; }

    /** Completed accesses per second since start(). */
    double throughput() const;

  private:
    void clientLoop();

    EventQueue &eq_;
    ArrayController &array_;
    ClosedLoopConfig config_;
    Rng rng_;
    bool running_ = false;
    std::uint64_t epoch_ = 0;
    std::uint64_t completed_ = 0;
    Tick startedAt_ = 0;
};

} // namespace declust

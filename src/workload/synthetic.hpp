/**
 * @file
 * Synthetic workload generator (paper table 5-1(a)).
 *
 * Open-arrival Poisson stream of fixed-size, aligned accesses, uniform
 * over all user data, with a configurable read fraction. The paper's
 * experiments use 4 KB (one stripe unit) accesses at 105/210/378 per
 * second with read ratios of 0%, 50%, and 100%.
 */
#pragma once

#include <cstdint>
#include <functional>

#include "array/controller.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace declust {

/** Workload parameters. */
struct WorkloadConfig
{
    /** User accesses per second (Poisson arrivals). */
    double accessesPerSec = 105.0;
    /** Fraction of accesses that are reads, in [0, 1]. */
    double readFraction = 0.5;
    /** Access size in stripe units (the paper uses 1 = 4 KB). */
    int accessUnits = 1;
    /** RNG seed. */
    std::uint64_t seed = 1;
};

/** Poisson open-arrival generator bound to one array. */
class SyntheticWorkload
{
  public:
    SyntheticWorkload(EventQueue &eq, ArrayController &array,
                      const WorkloadConfig &config);

    /** Begin generating arrivals (idempotent). */
    void start();

    /** Stop generating arrivals; in-flight requests still complete. */
    void stop();

    bool running() const { return running_; }

    std::uint64_t issued() const { return issued_; }
    std::uint64_t completed() const { return completed_; }

  private:
    void scheduleNext();
    void arrive();

    EventQueue &eq_;
    ArrayController &array_;
    WorkloadConfig config_;
    Rng rng_;
    bool running_ = false;
    /** Generation counter: stale scheduled arrivals are discarded. */
    std::uint64_t epoch_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace declust

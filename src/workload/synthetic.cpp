#include "workload/synthetic.hpp"

#include "array/controller.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "util/error.hpp"

namespace declust {

SyntheticWorkload::SyntheticWorkload(EventQueue &eq, ArrayController &array,
                                     const WorkloadConfig &config)
    : eq_(eq), array_(array), config_(config), rng_(config.seed)
{
    DECLUST_ASSERT(config_.accessesPerSec > 0, "rate must be positive");
    DECLUST_ASSERT(config_.readFraction >= 0 && config_.readFraction <= 1,
                   "read fraction must be in [0,1]");
    DECLUST_ASSERT(config_.accessUnits >= 1, "empty accesses");
    DECLUST_ASSERT(array_.numDataUnits() >= config_.accessUnits,
                   "array smaller than one access");
}

void
SyntheticWorkload::start()
{
    if (running_)
        return;
    running_ = true;
    ++epoch_;
    scheduleNext();
}

void
SyntheticWorkload::stop()
{
    running_ = false;
    ++epoch_; // invalidate any scheduled arrival
}

void
SyntheticWorkload::scheduleNext()
{
    const double meanGapSec = 1.0 / config_.accessesPerSec;
    const Tick gap = secToTicks(rng_.exponential(meanGapSec));
    eq_.scheduleIn(gap, [this, epoch = epoch_] {
        if (epoch != epoch_ || !running_)
            return;
        arrive();
        scheduleNext();
    });
}

void
SyntheticWorkload::arrive()
{
    const std::int64_t span =
        array_.numDataUnits() - config_.accessUnits + 1;
    const std::int64_t first = static_cast<std::int64_t>(
        rng_.uniformInt(static_cast<std::uint64_t>(span)));
    ++issued_;
    auto onDone = [this] { ++completed_; };
    if (rng_.bernoulli(config_.readFraction))
        array_.readUnits(first, config_.accessUnits, onDone);
    else
        array_.writeUnits(first, config_.accessUnits, onDone);
}

} // namespace declust

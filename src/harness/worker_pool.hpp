/**
 * @file
 * Persistent worker-thread pool for round-based parallel sections.
 *
 * TrialRunner historically spawned fresh std::threads for every sweep
 * call — fine when one sweep point runs for seconds, but the cluster
 * layer (src/cluster) enters a parallel section once per epoch barrier,
 * hundreds of times per run, where per-round thread creation would
 * dominate. WorkerPool keeps the threads alive across rounds: runRound
 * wakes the workers, each participating worker runs the round body once
 * (the body does its own work claiming, typically off a shared atomic
 * counter), and the caller blocks until every participant returns.
 *
 * The pool is generation-stamped: workers sleep on a condition variable
 * between rounds, so an idle pool burns no CPU, and the mutex
 * acquire/release around round start and end gives the caller a
 * happens-before edge over everything the workers wrote — the same
 * visibility join() used to provide.
 *
 * Bodies MUST NOT throw (TrialRunner's round bodies catch everything
 * and stash the first exception themselves).
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace declust {

/** Fixed set of worker threads executing one round body at a time. */
class WorkerPool
{
  public:
    /** Spawns @p threads workers (>= 1) that idle until runRound. */
    explicit WorkerPool(int threads);
    /** Wakes and joins every worker. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    int threads() const { return static_cast<int>(workers_.size()); }

    /**
     * Run @p body once on each of the first @p participants workers
     * (1 <= participants <= threads()), blocking until all return.
     * @p body must be thread-safe and must not throw.
     */
    void runRound(int participants, const std::function<void()> &body);

  private:
    void workerMain(int id);

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable workCv_; ///< workers wait for a new round
    std::condition_variable doneCv_; ///< caller waits for round end
    std::uint64_t generation_ = 0;   ///< bumped once per round
    int participants_ = 0;
    int remaining_ = 0;
    const std::function<void()> *body_ = nullptr;
    bool stopping_ = false;
};

} // namespace declust

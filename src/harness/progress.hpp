/**
 * @file
 * Progress/ETA line for long trial sweeps.
 *
 * Writes a single self-overwriting line to stderr ("fig8_recon_single:
 * 7/14 trials  elapsed 12.3s  eta 12.1s") when stderr is a terminal;
 * when redirected it stays silent until the final "done" summary, so
 * batch logs and CI output stay clean. Progress is cosmetic: it reads
 * wall-clock time and never touches simulated time, so it cannot
 * perturb results.
 */
#pragma once

#include <chrono>
#include <string>

namespace declust {

/** Terminal progress line; construct once per sweep. */
class ProgressMeter
{
  public:
    /**
     * @param label Prefix for the line, typically the bench name.
     * @param unit  Noun for the counted work items ("trials" by
     *        default; sharded sweeps count "shards" so a 1-trial ×
     *        8-shard run shows motion instead of sitting at 0/1).
     */
    explicit ProgressMeter(std::string label,
                           std::string unit = "trials");

    /** Update the line (no-op unless stderr is a tty). Thread-safe only
     * if externally serialized — TrialRunner serializes its progress
     * callback. */
    void update(int done, int total);

    /** Erase the live line and print the final one-shot summary. */
    void finish(int total);

    /** Seconds since construction. */
    double elapsedSec() const;

  private:
    std::string label_;
    std::string unit_;
    std::chrono::steady_clock::time_point start_;
    bool isTty_;
    bool lineActive_ = false;
};

} // namespace declust

#include "harness/trial_runner.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <thread>

#include "sim/event_queue.hpp"
#include "util/error.hpp"

namespace declust {

bool
selectEventQueue(const std::string &name)
{
    if (name.empty())
        return true;
    EventQueue::Impl impl;
    if (!EventQueue::parseImplName(name, &impl)) {
        std::cerr << "unknown event-queue implementation '" << name
                  << "' (expected: heap | calendar)\n";
        return false;
    }
    EventQueue::setDefaultImpl(impl);
    return true;
}

TrialRunner::TrialRunner(int jobs)
{
    if (jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw > 0 ? static_cast<int>(hw) : 1;
    }
    jobs_ = jobs;
}

void
TrialRunner::run(int numTasks, const std::function<void(int)> &task,
                 const std::function<void(int, int)> &onTrialDone)
{
    DECLUST_ASSERT(numTasks >= 0, "negative trial count");
    DECLUST_ASSERT(task, "runner needs a task");
    if (numTasks == 0)
        return;

    if (jobs_ == 1) {
        // Inline serial path: no threads, identical to the pre-harness
        // drivers down to the order progress callbacks fire in.
        for (int i = 0; i < numTasks; ++i) {
            task(i);
            if (onTrialDone)
                onTrialDone(i + 1, numTasks);
        }
        return;
    }

    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex mu; // serializes onTrialDone and first-error capture
    std::exception_ptr firstError;

    auto worker = [&] {
        for (;;) {
            const int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= numTasks)
                return;
            try {
                task(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (!firstError)
                    firstError = std::current_exception();
                // Park the claim counter past the end so idle workers
                // stop picking up new trials.
                next.store(numTasks, std::memory_order_relaxed);
                return;
            }
            const int finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (onTrialDone) {
                std::lock_guard<std::mutex> lock(mu);
                onTrialDone(finished, numTasks);
            }
        }
    };

    const int threads = jobs_ < numTasks ? jobs_ : numTasks;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace declust

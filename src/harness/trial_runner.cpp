#include "harness/trial_runner.hpp"

#include <atomic>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <thread>

#include "harness/worker_pool.hpp"
#include "sim/event_queue.hpp"
#include "util/error.hpp"

namespace declust {

bool
selectEventQueue(const std::string &name)
{
    if (name.empty())
        return true;
    EventQueue::Impl impl;
    if (!EventQueue::parseImplName(name, &impl)) {
        std::cerr << "unknown event-queue implementation '" << name
                  << "' (expected: heap | calendar)\n";
        return false;
    }
    EventQueue::setDefaultImpl(impl);
    return true;
}

TrialRunner::TrialRunner(int jobs)
{
    if (jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        jobs = hw > 0 ? static_cast<int>(hw) : 1;
    }
    jobs_ = jobs;
}

TrialRunner::~TrialRunner() = default;

void
TrialRunner::run(int numTasks, const std::function<void(int)> &task,
                 const std::function<void(int, int)> &onTrialDone)
{
    DECLUST_ASSERT(task, "runner needs a task");
    // One-level scheduling is the shards == 1 corner of the grid.
    runSharded(
        numTasks, 1, [&task](int trial, int) { task(trial); }, {},
        onTrialDone);
}

void
TrialRunner::runSharded(int numTrials, int shards,
                        const std::function<void(int, int)> &item,
                        const std::function<void(int)> &mergeTrial,
                        const std::function<void(int, int)> &onItemDone)
{
    DECLUST_ASSERT(numTrials >= 0, "negative trial count");
    DECLUST_ASSERT(shards >= 1, "shards must be >= 1, got ", shards);
    DECLUST_ASSERT(item, "runner needs a work item");
    if (numTrials == 0)
        return;
    DECLUST_ASSERT(static_cast<long long>(numTrials) * shards <=
                       INT32_MAX,
                   "trials x shards overflows the work-item grid");
    const int total = numTrials * shards;

    if (jobs_ == 1) {
        // Inline serial path: no threads, identical to the pre-harness
        // drivers down to the order progress callbacks fire in.
        int finished = 0;
        for (int trial = 0; trial < numTrials; ++trial) {
            for (int shard = 0; shard < shards; ++shard) {
                item(trial, shard);
                if (shard == shards - 1 && mergeTrial)
                    mergeTrial(trial);
                ++finished;
                if (onItemDone)
                    onItemDone(finished, total);
            }
        }
        return;
    }

    std::atomic<int> next{0};
    std::atomic<int> done{0};
    // Per-trial countdown: the worker that retires a trial's last shard
    // runs its merge. acq_rel on the decrement makes every shard's
    // writes visible to the merging worker.
    std::vector<std::atomic<int>> remaining(
        static_cast<std::size_t>(numTrials));
    for (auto &r : remaining)
        r.store(shards, std::memory_order_relaxed);
    std::mutex mu; // serializes onItemDone and first-error capture
    std::exception_ptr firstError;

    auto worker = [&] {
        for (;;) {
            const int i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= total)
                return;
            // Trial-major claim order: all shards of a trial go out
            // back-to-back, so one long sweep point saturates the pool.
            const int trial = i / shards;
            const int shard = i % shards;
            try {
                item(trial, shard);
                if (remaining[static_cast<std::size_t>(trial)].fetch_sub(
                        1, std::memory_order_acq_rel) == 1 &&
                    mergeTrial)
                    mergeTrial(trial);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (!firstError)
                    firstError = std::current_exception();
                // Park the claim counter past the end so idle workers
                // stop picking up new work items.
                next.store(total, std::memory_order_relaxed);
                return;
            }
            const int finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (onItemDone) {
                std::lock_guard<std::mutex> lock(mu);
                onItemDone(finished, total);
            }
        }
    };

    // The worker body claims items off the shared counter until the
    // grid is exhausted, so handing it to min(jobs, total) persistent
    // workers is equivalent to the old spawn-per-call threads; the
    // pool's round mutex provides the same happens-before edge join()
    // did for the results the caller reads next.
    if (!pool_)
        pool_ = std::make_unique<WorkerPool>(jobs_);
    const int participants = jobs_ < total ? jobs_ : total;
    pool_->runRound(participants, worker);

    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace declust

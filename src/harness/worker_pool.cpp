#include "harness/worker_pool.hpp"

#include "util/error.hpp"

namespace declust {

WorkerPool::WorkerPool(int threads)
{
    DECLUST_ASSERT(threads >= 1, "worker pool needs >= 1 thread, got ",
                   threads);
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        workers_.emplace_back([this, t] { workerMain(t); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
WorkerPool::runRound(int participants, const std::function<void()> &body)
{
    DECLUST_ASSERT(participants >= 1 && participants <= threads(),
                   "round participants ", participants,
                   " out of range for a pool of ", threads());
    DECLUST_ASSERT(body, "round needs a body");
    std::unique_lock<std::mutex> lock(mu_);
    body_ = &body;
    participants_ = participants;
    remaining_ = participants;
    ++generation_;
    workCv_.notify_all();
    doneCv_.wait(lock, [this] { return remaining_ == 0; });
    body_ = nullptr;
}

void
WorkerPool::workerMain(int id)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void()> *body = nullptr;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workCv_.wait(lock, [this, seen] {
                return stopping_ || generation_ != seen;
            });
            if (stopping_)
                return;
            seen = generation_;
            // Workers beyond the round's participant count sit this
            // round out (they were never counted in remaining_).
            if (id >= participants_)
                continue;
            body = body_;
        }
        (*body)();
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--remaining_ == 0)
                doneCv_.notify_all();
        }
    }
}

} // namespace declust

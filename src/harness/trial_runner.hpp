/**
 * @file
 * Thread-pool runner for independent simulation trials.
 *
 * Every experiment driver in bench/ sweeps a parameter grid where each
 * point is one self-contained simulation: its own EventQueue, its own
 * seed-derived RNGs, no shared mutable state. TrialRunner fans those
 * trials across worker threads and collects results in trial order, so
 * the emitted tables are byte-identical whatever the worker count —
 * parallelism changes only the wall clock, never the science.
 *
 * Determinism contract: a trial must touch nothing but its own state
 * (ArraySimulation already satisfies this: simulated time lives in the
 * per-trial EventQueue, randomness in per-trial RNGs seeded from the
 * trial's parameters). Under that contract per-seed results are
 * bit-identical between --jobs 1 and --jobs N; the jobs==1 path runs
 * inline on the calling thread with no pool at all, so serial runs are
 * also identical to the pre-harness drivers.
 */
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace declust {

class WorkerPool;

/**
 * Select the process-wide event-queue implementation by name ("heap" |
 * "calendar"); an empty name keeps the built-in default. Call once at
 * startup, before any trial runs — every trial's default-constructed
 * EventQueue picks the implementation up from here, so one flag flips
 * the whole sweep without threading a parameter through every driver.
 * @return false (after printing to stderr) on an unknown name.
 */
bool selectEventQueue(const std::string &name);

/** Fans independent trials across worker threads. */
class TrialRunner
{
  public:
    /**
     * @param jobs Worker threads; <= 0 selects the hardware thread
     *        count. jobs == 1 never spawns a thread. Threads live in a
     *        persistent WorkerPool created on the first parallel run
     *        and reused across calls, so callers that enter parallel
     *        sections at high frequency (the cluster layer's per-epoch
     *        barriers) pay thread creation once, not per section.
     */
    explicit TrialRunner(int jobs);
    ~TrialRunner();

    TrialRunner(const TrialRunner &) = delete;
    TrialRunner &operator=(const TrialRunner &) = delete;

    /** Resolved worker count (>= 1). */
    int jobs() const { return jobs_; }

    /**
     * Invoke task(i) exactly once for every i in [0, numTasks), blocking
     * until all complete. Tasks are claimed in index order but may
     * finish out of order; @p onTrialDone (optional) is serialized and
     * told how many trials have finished — drive progress lines from it.
     * The first exception a task throws is rethrown on the caller after
     * all workers drain; remaining unclaimed tasks are abandoned.
     */
    void run(int numTasks, const std::function<void(int)> &task,
             const std::function<void(int done, int total)> &onTrialDone =
                 {});

    /**
     * Two-level scheduling over a trials × shards grid: invoke
     * item(trial, shard) exactly once for every cell, and
     * mergeTrial(trial) exactly once per trial, on whichever worker
     * completes the trial's last shard — strictly after all of that
     * trial's shards finished, and before that shard is reported done.
     *
     * Work items are claimed trial-major (all shards of trial 0, then
     * trial 1, ...), so with few trials every worker still finds a
     * shard to run — the point of sharding one long sweep point.
     *
     * Determinism: mergeTrial sees every shard's result regardless of
     * completion order; if it folds them in shard-index order its
     * output is identical whatever the worker count. @p onItemDone is
     * serialized and counts finished *shards* (total = trials×shards),
     * so progress moves within a single sharded trial. Exceptions
     * propagate as in run().
     */
    void runSharded(
        int numTrials, int shards,
        const std::function<void(int trial, int shard)> &item,
        const std::function<void(int trial)> &mergeTrial,
        const std::function<void(int done, int total)> &onItemDone = {});

  private:
    int jobs_;
    /** Persistent workers, created lazily on the first parallel run. */
    std::unique_ptr<WorkerPool> pool_;
};

/**
 * Typed convenience wrapper: run @p trials and return their results in
 * trial order (index i of the result vector came from trials[i]).
 */
template <typename R>
std::vector<R>
runTrialsOrdered(TrialRunner &runner,
                 const std::vector<std::function<R()>> &trials,
                 const std::function<void(int, int)> &onTrialDone = {})
{
    std::vector<R> results(trials.size());
    runner.run(
        static_cast<int>(trials.size()),
        [&](int i) {
            results[static_cast<std::size_t>(i)] =
                trials[static_cast<std::size_t>(i)]();
        },
        onTrialDone);
    return results;
}

/**
 * Typed two-level wrapper: run every (trial, shard) cell through
 * @p item, hand each trial's shard results — indexed by shard, whatever
 * order they finished in — to @p mergeTrial, and return the merged
 * results in trial order. Shard must be default-constructible; each
 * trial's shard vector is released as soon as the trial is merged.
 */
template <typename Shard, typename Merged>
std::vector<Merged>
runShardedOrdered(
    TrialRunner &runner, int numTrials, int shards,
    const std::function<Shard(int trial, int shard)> &item,
    const std::function<Merged(int trial, std::vector<Shard> &shardResults)>
        &mergeTrial,
    const std::function<void(int, int)> &onItemDone = {})
{
    std::vector<std::vector<Shard>> parts(
        static_cast<std::size_t>(numTrials));
    for (auto &p : parts)
        p.resize(static_cast<std::size_t>(shards));
    std::vector<Merged> results(static_cast<std::size_t>(numTrials));
    runner.runSharded(
        numTrials, shards,
        [&](int trial, int shard) {
            parts[static_cast<std::size_t>(trial)]
                 [static_cast<std::size_t>(shard)] = item(trial, shard);
        },
        [&](int trial) {
            auto &mine = parts[static_cast<std::size_t>(trial)];
            results[static_cast<std::size_t>(trial)] =
                mergeTrial(trial, mine);
            mine.clear();
            mine.shrink_to_fit();
        },
        onItemDone);
    return results;
}

} // namespace declust

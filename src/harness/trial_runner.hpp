/**
 * @file
 * Thread-pool runner for independent simulation trials.
 *
 * Every experiment driver in bench/ sweeps a parameter grid where each
 * point is one self-contained simulation: its own EventQueue, its own
 * seed-derived RNGs, no shared mutable state. TrialRunner fans those
 * trials across worker threads and collects results in trial order, so
 * the emitted tables are byte-identical whatever the worker count —
 * parallelism changes only the wall clock, never the science.
 *
 * Determinism contract: a trial must touch nothing but its own state
 * (ArraySimulation already satisfies this: simulated time lives in the
 * per-trial EventQueue, randomness in per-trial RNGs seeded from the
 * trial's parameters). Under that contract per-seed results are
 * bit-identical between --jobs 1 and --jobs N; the jobs==1 path runs
 * inline on the calling thread with no pool at all, so serial runs are
 * also identical to the pre-harness drivers.
 */
#pragma once

#include <exception>
#include <functional>
#include <string>
#include <vector>

namespace declust {

/**
 * Select the process-wide event-queue implementation by name ("heap" |
 * "calendar"); an empty name keeps the built-in default. Call once at
 * startup, before any trial runs — every trial's default-constructed
 * EventQueue picks the implementation up from here, so one flag flips
 * the whole sweep without threading a parameter through every driver.
 * @return false (after printing to stderr) on an unknown name.
 */
bool selectEventQueue(const std::string &name);

/** Fans independent trials across worker threads. */
class TrialRunner
{
  public:
    /**
     * @param jobs Worker threads; <= 0 selects the hardware thread
     *        count. jobs == 1 never spawns a thread.
     */
    explicit TrialRunner(int jobs);

    /** Resolved worker count (>= 1). */
    int jobs() const { return jobs_; }

    /**
     * Invoke task(i) exactly once for every i in [0, numTasks), blocking
     * until all complete. Tasks are claimed in index order but may
     * finish out of order; @p onTrialDone (optional) is serialized and
     * told how many trials have finished — drive progress lines from it.
     * The first exception a task throws is rethrown on the caller after
     * all workers drain; remaining unclaimed tasks are abandoned.
     */
    void run(int numTasks, const std::function<void(int)> &task,
             const std::function<void(int done, int total)> &onTrialDone =
                 {});

  private:
    int jobs_;
};

/**
 * Typed convenience wrapper: run @p trials and return their results in
 * trial order (index i of the result vector came from trials[i]).
 */
template <typename R>
std::vector<R>
runTrialsOrdered(TrialRunner &runner,
                 const std::vector<std::function<R()>> &trials,
                 const std::function<void(int, int)> &onTrialDone = {})
{
    std::vector<R> results(trials.size());
    runner.run(
        static_cast<int>(trials.size()),
        [&](int i) {
            results[static_cast<std::size_t>(i)] =
                trials[static_cast<std::size_t>(i)]();
        },
        onTrialDone);
    return results;
}

} // namespace declust

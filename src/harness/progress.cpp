#include "harness/progress.hpp"

#include <cstdio>

#if defined(_WIN32)
#include <io.h>
#define DECLUST_ISATTY(fd) _isatty(fd)
#else
#include <unistd.h>
#define DECLUST_ISATTY(fd) isatty(fd)
#endif

namespace declust {

ProgressMeter::ProgressMeter(std::string label, std::string unit)
    : label_(std::move(label)),
      unit_(std::move(unit)),
      start_(std::chrono::steady_clock::now()),
      isTty_(DECLUST_ISATTY(fileno(stderr)) != 0)
{
}

double
ProgressMeter::elapsedSec() const
{
    const auto dt = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(dt).count();
}

void
ProgressMeter::update(int done, int total)
{
    if (!isTty_ || total <= 0)
        return;
    const double elapsed = elapsedSec();
    const double eta =
        done > 0 ? elapsed * (total - done) / done : 0.0;
    std::fprintf(stderr, "\r%s: %d/%d %s  elapsed %.1fs  eta %.1fs ",
                 label_.c_str(), done, total, unit_.c_str(), elapsed,
                 eta);
    std::fflush(stderr);
    lineActive_ = true;
}

void
ProgressMeter::finish(int total)
{
    if (lineActive_) {
        std::fprintf(stderr, "\r\033[K");
        lineActive_ = false;
    }
    std::fprintf(stderr, "%s: %d %s in %.1fs\n", label_.c_str(), total,
                 unit_.c_str(), elapsedSec());
}

} // namespace declust

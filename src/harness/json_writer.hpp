/**
 * @file
 * Minimal JSON object writer for machine-readable bench output.
 *
 * The perf-tracking workflow diffs per-bench throughput records
 * (BENCH_*.json) across commits; this writer covers exactly the flat
 * string/number objects those records need without pulling in a JSON
 * dependency. Numbers are emitted with enough digits to round-trip.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace declust {

/**
 * Ordered JSON object: string, integer, double, or nested-object
 * fields.
 */
class JsonObject
{
  public:
    JsonObject &
    set(std::string key, std::string value)
    {
        fields_.emplace_back(std::move(key), Value{std::move(value)});
        return *this;
    }

    JsonObject &
    set(std::string key, const char *value)
    {
        return set(std::move(key), std::string(value));
    }

    JsonObject &
    set(std::string key, std::int64_t value)
    {
        fields_.emplace_back(std::move(key), Value{value});
        return *this;
    }

    JsonObject &
    set(std::string key, std::uint64_t value)
    {
        return set(std::move(key), static_cast<std::int64_t>(value));
    }

    JsonObject &
    set(std::string key, int value)
    {
        return set(std::move(key), static_cast<std::int64_t>(value));
    }

    JsonObject &
    set(std::string key, double value)
    {
        fields_.emplace_back(std::move(key), Value{value});
        return *this;
    }

    /** Nest another object under @p key. */
    JsonObject &
    set(std::string key, JsonObject value)
    {
        fields_.emplace_back(
            std::move(key),
            Value{std::make_shared<JsonObject>(std::move(value))});
        return *this;
    }

    /** Flat array of numbers under @p key (e.g. per-shard walls). */
    JsonObject &
    set(std::string key, std::vector<double> values)
    {
        fields_.emplace_back(std::move(key), Value{std::move(values)});
        return *this;
    }

    /** Serialize as a single pretty-printed object. */
    void
    write(std::ostream &os) const
    {
        writeIndented(os, 0);
        os << '\n';
    }

    std::string
    str() const
    {
        std::ostringstream os;
        write(os);
        return os.str();
    }

  private:
    using Value = std::variant<std::string, std::int64_t, double,
                               std::shared_ptr<JsonObject>,
                               std::vector<double>>;

    void
    writeIndented(std::ostream &os, int depth) const
    {
        const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
        os << "{\n";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            os << pad << "  \"" << escaped(fields_[i].first) << "\": ";
            writeValue(os, fields_[i].second, depth + 1);
            if (i + 1 < fields_.size())
                os << ',';
            os << '\n';
        }
        os << pad << "}";
    }

    static std::string
    escaped(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c; break;
            }
        }
        return out;
    }

    static void
    writeValue(std::ostream &os, const Value &v, int depth)
    {
        if (const auto *s = std::get_if<std::string>(&v)) {
            os << '"' << escaped(*s) << '"';
        } else if (const auto *i = std::get_if<std::int64_t>(&v)) {
            os << *i;
        } else if (const auto *obj =
                       std::get_if<std::shared_ptr<JsonObject>>(&v)) {
            (*obj)->writeIndented(os, depth);
        } else if (const auto *arr =
                       std::get_if<std::vector<double>>(&v)) {
            os << '[';
            for (std::size_t i = 0; i < arr->size(); ++i) {
                if (i)
                    os << ", ";
                writeNumber(os, (*arr)[i]);
            }
            os << ']';
        } else {
            writeNumber(os, std::get<double>(v));
        }
    }

    static void
    writeNumber(std::ostream &os, double value)
    {
        std::ostringstream num;
        num.precision(17);
        num << value;
        os << num.str();
    }

    std::vector<std::pair<std::string, Value>> fields_;
};

} // namespace declust

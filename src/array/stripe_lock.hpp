/**
 * @file
 * Per-parity-stripe locking.
 *
 * Any flow that mutates a stripe's parity relationship (user writes,
 * degraded-mode operations, reconstruction cycles) runs inside the
 * stripe's critical section so concurrent flows cannot interleave their
 * read and write phases and corrupt parity — the same serialization a
 * real striping driver enforces.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

namespace declust {

/** Non-blocking (callback-queueing) lock table keyed by stripe index. */
class StripeLockTable
{
  public:
    /**
     * Acquire @p stripe's lock: run @p critical immediately if free,
     * otherwise queue it to run when the holder releases. The critical
     * section ends only when release(stripe) is called (possibly from a
     * later event).
     */
    void acquire(std::int64_t stripe, std::function<void()> critical);

    /** Release @p stripe's lock and start the next waiter, if any. */
    void release(std::int64_t stripe);

    /** True if the stripe's lock is currently held. */
    bool locked(std::int64_t stripe) const;

    /** Number of stripes currently locked. */
    std::size_t heldCount() const { return held_.size(); }

    /** Total acquisitions that had to wait (contention metric). */
    std::uint64_t contended() const { return contended_; }

  private:
    std::unordered_map<std::int64_t, std::deque<std::function<void()>>>
        held_;
    std::uint64_t contended_ = 0;
};

} // namespace declust

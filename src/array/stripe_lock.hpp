/**
 * @file
 * Per-parity-stripe locking.
 *
 * Any flow that mutates a stripe's parity relationship (user writes,
 * degraded-mode operations, reconstruction cycles) runs inside the
 * stripe's critical section so concurrent flows cannot interleave their
 * read and write phases and corrupt parity — the same serialization a
 * real striping driver enforces.
 *
 * The table is allocation-free on the steady-state path: held stripes
 * live in an open-addressing hash table (linear probing, backward-shift
 * deletion), and waiters are intrusive — the caller's own operation
 * object (see array/io_op.hpp) is linked into the stripe's FIFO wait
 * list through its Waiter base, so contention never touches the heap.
 *
 * Validation builds (-DDECLUST_VALIDATE=ON) track a queued flag per
 * waiter and audit the wait list on every acquire/release, so a waiter
 * enqueued twice, a release of an unheld stripe, and wait-list
 * corruption (cycle, broken tail, lost link) all panic with the stripe
 * and waiter context instead of hanging or corrupting parity. (A
 * holder re-acquiring its own stripe is deliberately NOT flagged: the
 * requeue-to-back pattern — re-acquire from inside the critical
 * section, then release — is part of the table's contract.)
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/annotations.hpp"
#include "util/validate.hpp"

namespace declust {

/** Non-blocking (waiter-queueing) lock table keyed by stripe index. */
class StripeLockTable
{
  public:
    /**
     * Intrusive wait-list node. Embed (derive) this in the operation
     * object that wants the lock; it must stay alive until resume fires
     * or the lock is acquired immediately. The table never allocates or
     * frees waiters.
     */
    struct Waiter
    {
        /** Called (synchronously, from release) when the lock is handed
         * to this waiter. Receives the waiter itself. */
        void (*resume)(Waiter *) = nullptr;
        Waiter *nextWaiter = nullptr;
#if DECLUST_VALIDATE
        /** True while linked into some stripe's wait list. */
        bool vQueued = false;
#endif
    };

    StripeLockTable();

    /**
     * Try to acquire @p stripe's lock. Returns true if the lock was
     * free: the caller holds it and runs its critical section now.
     * Returns false if the stripe is already locked: @p waiter is
     * queued FIFO and its resume fires — with the lock held on its
     * behalf — when the holder releases. Either way the critical
     * section ends only when release(stripe) is called.
     */
    DECLUST_HOT_PATH
    bool acquire(std::int64_t stripe, Waiter *waiter);

    /** Release @p stripe's lock and hand it to the next waiter, if any. */
    DECLUST_HOT_PATH
    void release(std::int64_t stripe);

    /** True if the stripe's lock is currently held. */
    bool locked(std::int64_t stripe) const;

    /** Number of stripes currently locked. */
    std::size_t heldCount() const { return heldCount_; }

    /** Total acquisitions that had to wait (contention metric). */
    std::uint64_t contended() const { return contended_; }

    /** Total acquisitions that got the lock immediately. */
    std::uint64_t uncontended() const { return uncontended_; }

    /** Total lock handoffs from a releaser to a queued waiter. */
    std::uint64_t handoffs() const { return handoffs_; }

  private:
    /** One held stripe: its key plus the FIFO wait list. */
    struct Slot
    {
        std::int64_t stripe;
        Waiter *head;
        Waiter *tail;
    };

    /** Key marking an empty slot (stripe indices are non-negative). */
    static constexpr std::int64_t kEmpty = -1;

    std::size_t homeIndex(std::int64_t stripe) const;
    std::size_t findIndex(std::int64_t stripe) const;
    void insert(const Slot &slot);
    void eraseIndex(std::size_t index);
    void grow();

#if DECLUST_VALIDATE
    /** Audit one slot's wait list: acyclic, tail-terminated, every
     * node flagged queued. Panics with stripe context on violation. */
    void validateWaitList(const Slot &slot) const;
#endif

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t heldCount_ = 0;
    std::uint64_t contended_ = 0;
    std::uint64_t uncontended_ = 0;
    std::uint64_t handoffs_ = 0;
};

} // namespace declust

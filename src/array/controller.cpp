#include "array/controller.hpp"

#include <utility>

#include "array/io_op.hpp"
#include "array/stripe_lock.hpp"
#include "array/types.hpp"
#include "disk/disk.hpp"
#include "disk/fault_model.hpp"
#include "disk/scheduler.hpp"
#include "ec/cost_model.hpp"
#include "ec/data_plane.hpp"
#include "ec/kernels.hpp"
#include "layout/layout.hpp"
#include "sim/event_queue.hpp"
#include "sim/serial_resource.hpp"
#include "sim/time.hpp"
#include "stats/perf_counters.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/validate.hpp"

namespace declust {

namespace {

/** Rebuild state of one failed-disk offset (values of reconstructed_). */
constexpr std::uint8_t kNotRebuilt = 0;
constexpr std::uint8_t kRebuilt = 1;
/** Abandoned: a surviving unit of its stripe was lost, so the unit can
 * never be regenerated. Counts as "handled" for sweep accounting. */
constexpr std::uint8_t kLostForever = 2;

/** @{ Hedge state bits (IoOp::hedgeFlags; see IoSteps hedge* flows). */
/** Deadline timer scheduled; the op is a hedged read. */
constexpr std::uint8_t kHedgeArmed = 1;
/** The parity-reconstruct race has been launched. */
constexpr std::uint8_t kHedgeLaunched = 2;
/** The primary disk read has completed (either way). */
constexpr std::uint8_t kHedgePrimaryDone = 4;
/** The user-visible completion has been delivered (exactly once). */
constexpr std::uint8_t kHedgeResolved = 8;
/** The primary flow has asked to recycle the op (holds pending). */
constexpr std::uint8_t kHedgeMainDone = 16;
/** The hedge chain aborted without delivering a value. */
constexpr std::uint8_t kHedgeFailed = 32;
/** The hedge chain has fully unwound (its hold was dropped). */
constexpr std::uint8_t kHedgeEnded = 64;
/** @} */

} // namespace

const char *
toString(ReconAlgorithm algorithm)
{
    switch (algorithm) {
      case ReconAlgorithm::Baseline:          return "baseline";
      case ReconAlgorithm::UserWrites:        return "user-writes";
      case ReconAlgorithm::Redirect:          return "redirect";
      case ReconAlgorithm::RedirectPiggyback: return "redir+piggyback";
    }
    return "?";
}

// ----------------------------------------------------------------------
// The continuation spine.
//
// Every flow below is a hand-rolled state machine over a pooled IoOp:
// each step is a plain function whose context is the op itself, so
// stepping a request never allocates. Fork/join is the op's `pending`
// counter; the stripe lock resumes the op through its intrusive Waiter
// base. The step order, issueUnit order, and values_.fresh() call
// points replicate the original lambda-based flows exactly — the event
// schedule (and therefore every published bench table) is unchanged.
// ----------------------------------------------------------------------

struct IoSteps
{
    static IoOp *
    fromWaiter(StripeLockTable::Waiter *w)
    {
        return static_cast<IoOp *>(w);
    }

    /**
     * Recover the op from a continuation context. Validation builds
     * trip on two lifetime bugs here: a continuation firing on an op
     * that was released (its ctl field reads back as pool poison), and
     * one whose memory is no longer a live chunk of its controller's
     * pool. With validation off this is exactly the old static_cast.
     */
    static IoOp *
    fromCtx(void *ctx)
    {
        IoOp *op = static_cast<IoOp *>(ctx);
#if DECLUST_VALIDATE
        DECLUST_VALIDATE_CHECK(op != nullptr,
                               "continuation fired with a null op");
        DECLUST_VALIDATE_CHECK(!looksPoisoned(op->ctl),
                               "continuation fired on a released IoOp at ",
                               ctx, " (pool poison in op->ctl)");
        DECLUST_VALIDATE_CHECK(op->ctl && op->ctl->ops_.isLive(op),
                               "continuation fired on an IoOp that is "
                               "not live in its controller's pool (", ctx,
                               ")");
#endif
        return op;
    }

    /** Record user response-time statistics for a finished op. */
    static void
    userStats(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        const Tick elapsed = c.eq_.now() - op->start;
        const double ms = ticksToMs(elapsed);
        if (op->kind == RequestKind::Read) {
            DECLUST_PERF_HIST(UserReadTicks, elapsed);
            c.stats_.readMs.add(ms);
            ++c.stats_.readsDone;
        } else {
            DECLUST_PERF_HIST(UserWriteTicks, elapsed);
            c.stats_.writeMs.add(ms);
            ++c.stats_.writesDone;
        }
        c.stats_.allMs.add(ms);
        c.stats_.allHist.add(ms);
        --c.outstanding_;
    }

    /** Complete a user-visible op: stats, recycle, then notify. */
    static void
    finishUserOp(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        userStats(op);
        DECLUST_ANALYZE_SUPPRESS(
            "hot-path-function: moves the caller-provided completion "
            "closure out of the op before recycling it — a move, not "
            "an allocating conversion");
        std::function<void()> done = std::move(op->done);
        c.ops_.release(op);
        if (done)
            done();
    }

    /** A leaf part's flow ended: stand-alone ops complete the user op;
     * parts of a multi-unit request signal their parent. */
    static void
    finishPart(IoOp *op)
    {
        IoOp *parent = op->parent;
        if (!parent) {
            finishUserOp(op);
            return;
        }
        op->ctl->ops_.release(op);
        if (--parent->pending == 0)
            finishUserOp(parent);
    }

    /** The user-visible side of a part is done but the op itself lives
     * on (piggyback background write). Detaches the part. */
    static void
    userPartDone(IoOp *op)
    {
        IoOp *parent = op->parent;
        if (parent) {
            op->parent = nullptr;
            if (--parent->pending == 0)
                finishUserOp(parent);
            return;
        }
        userStats(op);
        DECLUST_ANALYZE_SUPPRESS(
            "hot-path-function: moves the caller-provided completion "
            "closure; a move, not an allocating conversion");
        std::function<void()> done = std::move(op->done);
        if (done)
            done();
    }

    // ------------------------------------------------------------------
    // Fault accounting
    // ------------------------------------------------------------------

    /** Fold one disk completion status into the op's phase accumulator
     * and the controller's fault counters. */
    static void
    noteStatus(IoOp *op, IoStatus status)
    {
        if (status == IoStatus::Ok)
            return;
        ArrayController &c = *op->ctl;
        if (status == IoStatus::MediumError)
            ++c.faultStats_.mediumErrors;
        else
            ++c.faultStats_.diskFailedIos;
        op->status = worseStatus(op->status, status);
    }

    /** Record @p stripe as unrecoverable, bumping the data-loss event
     * count if this stripe is a fresh loss. */
    static void
    loseStripe(ArrayController &c, std::int64_t stripe)
    {
        if (c.markStripeUnrecoverable(stripe))
            ++c.faultStats_.dataLossEvents;
    }

    /** A user read hit an unrecoverable stripe: complete it as lost
     * (no data transfer is modeled; the caller sees the completion and
     * the controller counts the failed read). */
    static void
    finishLostRead(IoOp *op, bool locked)
    {
        ArrayController &c = *op->ctl;
        ++c.faultStats_.userReadsLost;
        if (locked)
            c.locks_.release(op->su.stripe);
        finishPart(op);
    }

    /** A user write could not be applied consistently (its stripe is or
     * became unrecoverable). Contents and shadow stay untouched. */
    static void
    finishLostWrite(IoOp *op, bool locked)
    {
        ArrayController &c = *op->ctl;
        ++c.faultStats_.userWritesLost;
        if (locked)
            c.locks_.release(op->su.stripe);
        finishPart(op);
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    static void
    startRead(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        if (c.stripeUnrecoverable(op->su.stripe)) {
            finishLostRead(op, /*locked=*/false);
            return;
        }
        const bool onFailed = op->data.disk == c.failedDisk_;
        const bool redirectable =
            c.reconActive_ &&
            c.reconstructed_[static_cast<std::size_t>(op->data.offset)] ==
                kRebuilt &&
            (c.algorithm_ == ReconAlgorithm::Redirect ||
             c.algorithm_ == ReconAlgorithm::RedirectPiggyback);

        if (!onFailed || redirectable) {
            // Plain read of valid contents: a healthy disk, a redirected
            // read of the rebuilt replacement/spare unit, or a remapped
            // spare location after a distributed-sparing rebuild.
            op->dst0 = c.effectiveUnit(op->su.stripe, op->su.pos);
            if (c.hedgeTicks_ > 0) {
                armHedge(op);
                return;
            }
            c.issueUnit(op->dst0, false, &readVerifyDone, op);
            return;
        }

        // On-the-fly reconstruction: read the G-1 surviving units of
        // the stripe under the stripe lock and XOR them.
        op->resume = &readDegradedResume;
        op->mid = c.eq_.now();
        if (c.locks_.acquire(op->su.stripe, op))
            readDegradedLocked(op);
    }

    static void
    readVerifyDone(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        if (status != IoStatus::Ok) {
            noteStatus(op, status);
            startReadRepair(op, status);
            return;
        }
        const UnitValue got = c.contents_.get(op->dst0.disk,
                                              op->dst0.offset);
        DECLUST_ASSERT(got == c.shadow_.get(op->dataUnit), "read of unit ",
                       op->dataUnit, " returned wrong data");
        finishPart(op);
    }

    /** The home read failed (medium error, or the home sat on a disk
     * that died mid-flight): regenerate the value from the stripe's
     * survivors under the stripe lock. A medium error additionally
     * rewrites the recovered value to the (remapped) home sector. */
    static void
    startReadRepair(IoOp *op, IoStatus status)
    {
        ArrayController &c = *op->ctl;
        if (c.stripeUnrecoverable(op->su.stripe) ||
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos)) {
            loseStripe(c, op->su.stripe);
            finishLostRead(op, /*locked=*/false);
            return;
        }
        DECLUST_PERF_INC(ReadRepairs);
        op->repairRewrite = status == IoStatus::MediumError;
        op->status = IoStatus::Ok;
        op->resume = &readRepairResume;
        op->mid = c.eq_.now();
        if (c.locks_.acquire(op->su.stripe, op))
            readRepairLocked(op);
    }

    static void
    readRepairResume(StripeLockTable::Waiter *w)
    {
        IoOp *op = fromWaiter(w);
        DECLUST_PERF_HIST(LockWaitTicks, op->ctl->eq_.now() - op->mid);
        readRepairLocked(op);
    }

    static void
    readRepairLocked(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        // Re-check under the lock: a second failure may have landed
        // while this op waited.
        if (c.stripeUnrecoverable(op->su.stripe) ||
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos)) {
            loseStripe(c, op->su.stripe);
            finishLostRead(op, /*locked=*/true);
            return;
        }
        const int G = c.layout_->stripeWidth();
        op->pending = G - 1;
        for (int pos = 0; pos < G; ++pos) {
            if (pos == op->su.pos)
                continue;
            c.issueUnit(c.effectiveUnit(op->su.stripe, pos), false,
                        &readRepairRead, op);
        }
    }

    static void
    readRepairRead(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (--op->pending != 0)
            return;
        ArrayController &c = *op->ctl;
        if (op->status != IoStatus::Ok) {
            // A survivor failed too: the unit cannot be regenerated.
            loseStripe(c, op->su.stripe);
            finishLostRead(op, /*locked=*/true);
            return;
        }
        c.afterXor(c.layout_->stripeWidth() - 1, &readRepairCombined, op);
    }

    static void
    readRepairCombined(void *ctx)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        // Re-check recoverability: a second disk may have died after the
        // survivor reads completed, poisoning a unit this XOR would use.
        if (c.secondFailedDisk_ >= 0 &&
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos)) {
            loseStripe(c, op->su.stripe);
            finishLostRead(op, /*locked=*/true);
            return;
        }
        op->v = c.xorStripeExcept(op->su.stripe, op->su.pos);
        DECLUST_ASSERT(op->v == c.shadow_.get(op->dataUnit),
                       "parity repair of unit ", op->dataUnit,
                       " produced wrong data");
        if (!op->repairRewrite) {
            // The home disk is gone; there is nowhere to rewrite. The
            // read itself was served from parity (not a sector repair —
            // the medium was never at fault).
            c.locks_.release(op->su.stripe);
            finishPart(op);
            return;
        }
        ++c.faultStats_.sectorRepairs;
        // Rewrite the recovered value to the remapped home sector.
        c.issueUnit(op->dst0, true, &readRepairWritten, op);
    }

    static void
    readRepairWritten(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        noteStatus(op, status);
        // The in-memory model never corrupted the value, so contents
        // already match; only the media state changed.
        c.locks_.release(op->su.stripe);
        finishPart(op);
    }

    static void
    readDegradedResume(StripeLockTable::Waiter *w)
    {
        IoOp *op = fromWaiter(w);
        DECLUST_PERF_HIST(LockWaitTicks, op->ctl->eq_.now() - op->mid);
        readDegradedLocked(op);
    }

    static void
    readDegradedLocked(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        // A second failure (or a survivor loss) may make the target
        // unrecoverable before or while this op waited for the lock.
        if (c.stripeUnrecoverable(op->su.stripe) ||
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos)) {
            loseStripe(c, op->su.stripe);
            finishLostRead(op, /*locked=*/true);
            return;
        }
        const int G = c.layout_->stripeWidth();
        DECLUST_PERF_INC(DegradedReads);
        op->pending = G - 1;
        for (int pos = 0; pos < G; ++pos) {
            if (pos == op->su.pos)
                continue;
            const PhysicalUnit pu = c.effectiveUnit(op->su.stripe, pos);
            DECLUST_ASSERT(pu.disk != c.failedDisk_,
                           "two stripe units on one disk");
            c.issueUnit(pu, false, &readDegradedRead, op);
        }
    }

    static void
    readDegradedRead(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (--op->pending != 0)
            return;
        ArrayController &c = *op->ctl;
        if (op->status != IoStatus::Ok) {
            // A survivor failed: the lost unit cannot be regenerated.
            loseStripe(c, op->su.stripe);
            if (c.reconActive_ && op->data.disk == c.failedDisk_)
                c.markReconstructionLost(op->data.offset);
            finishLostRead(op, /*locked=*/true);
            return;
        }
        c.afterXor(c.layout_->stripeWidth() - 1, &readDegradedCombined, op);
    }

    static void
    readDegradedCombined(void *ctx)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        // Re-check recoverability: a second disk may have died after the
        // survivor reads completed, poisoning a unit this XOR would use.
        if (c.secondFailedDisk_ >= 0 &&
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos)) {
            loseStripe(c, op->su.stripe);
            if (c.reconActive_ && op->data.disk == c.failedDisk_)
                c.markReconstructionLost(op->data.offset);
            finishLostRead(op, /*locked=*/true);
            return;
        }
        const UnitValue value = c.xorStripeExcept(op->su.stripe,
                                                  op->su.pos);
        DECLUST_ASSERT(value == c.shadow_.get(op->dataUnit),
                       "on-the-fly reconstruction of unit ", op->dataUnit,
                       " produced wrong data");
        const bool piggyback =
            c.reconActive_ &&
            c.algorithm_ == ReconAlgorithm::RedirectPiggyback &&
            c.reconstructed_[static_cast<std::size_t>(op->data.offset)] ==
                kNotRebuilt;
        if (!piggyback) {
            c.locks_.release(op->su.stripe);
            finishPart(op);
            return;
        }
        // Piggyback: the user response is complete, but the freshly
        // reconstructed unit is also written to its rebuild home (the
        // replacement disk or the stripe's spare unit).
        DECLUST_PERF_INC(PiggybackWrites);
        op->v = value;
        userPartDone(op);
        op->dst0 = c.rebuildTarget(op->su.stripe, op->data.offset);
        c.issueUnit(op->dst0, true, &piggybackWritten, op,
                    Priority::Background);
    }

    static void
    piggybackWritten(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        noteStatus(op, status);
        if (status == IoStatus::Ok) {
            c.contents_.set(op->dst0.disk, op->dst0.offset, op->v);
            c.markReconstructed(op->data.offset);
        }
        // On failure the piggyback write is simply dropped: the sweep
        // will reconstruct (or abandon) the unit on its own.
        c.locks_.release(op->su.stripe);
        c.ops_.release(op);
    }

    // ------------------------------------------------------------------
    // Hedged reads
    //
    // With hedgeAfterMs > 0, every plain-path user read arms a deadline
    // timer alongside the primary disk access. If the primary has not
    // completed by the deadline, the controller launches the
    // parity-reconstruct read a degraded read would perform — the G-1
    // survivor reads under the stripe lock — racing the slow disk.
    //
    // Resolution rule: whichever side materializes the value first
    // delivers the user completion; kHedgeResolved records that the
    // completion happened, exactly once, and every later arrival drains
    // silently into the accounting (HedgeWasted). "First" is decided by
    // event order on the simulated clock, so the race is deterministic
    // across --jobs / --shards / queue implementations.
    //
    // Lifetime rule: the event queue has no cancellation, so the pooled
    // op must outlive its pending deadline timer and any in-flight
    // hedge chain. hedgeHolds counts those obligations (timer +1, chain
    // +1); the primary flow's end sets kHedgeMainDone instead of
    // releasing, and the op is recycled by whichever of opRelease /
    // dropHold sees the other side already finished. hedgedLive_ keeps
    // the controller non-quiescent until every such record drains.
    // ------------------------------------------------------------------

    /** Bump the controller's fault counters for one completion without
     * folding into the op's accumulator — the hedge paths keep the
     * primary's outcome and the chain's worseStatus fold separate. */
    static void
    noteRawStatus(ArrayController &c, IoStatus status)
    {
        if (status == IoStatus::Ok)
            return;
        if (status == IoStatus::MediumError)
            ++c.faultStats_.mediumErrors;
        else
            ++c.faultStats_.diskFailedIos;
    }

    /** Recycle a hedged op (primary flow and all holds finished). */
    static void
    hedgedRelease(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        --c.hedgedLive_;
        c.ops_.release(op);
    }

    /** The primary flow of a hedged op is over: recycle now, or defer
     * to the last hold if the timer or chain still references the op. */
    static void
    opRelease(IoOp *op)
    {
        if (op->hedgeHolds > 0) {
            op->hedgeFlags |= kHedgeMainDone;
            return;
        }
        hedgedRelease(op);
    }

    /** Drop one hold; recycle once the primary flow has also ended. */
    static void
    dropHold(IoOp *op)
    {
        DECLUST_DEBUG_ASSERT(op->hedgeHolds > 0, "hedge hold underflow");
        if (--op->hedgeHolds == 0 && (op->hedgeFlags & kHedgeMainDone))
            hedgedRelease(op);
    }

    /** The hedge chain has fully unwound: drop its hold. */
    static void
    hedgeEnd(IoOp *op)
    {
        op->hedgeFlags |= kHedgeEnded;
        dropHold(op);
    }

    /** Both sides of a hedged read failed: deliver the loss. */
    static void
    lostHedged(IoOp *op, bool locked)
    {
        ArrayController &c = *op->ctl;
        op->hedgeFlags |= kHedgeResolved;
        loseStripe(c, op->su.stripe);
        ++c.faultStats_.userReadsLost;
        if (locked)
            c.locks_.release(op->su.stripe);
        userPartDone(op);
    }

    /** Arm a hedged read: deadline timer plus the primary access. The
     * timer is scheduled first — with both sides landing on the same
     * tick, the timer's lower sequence number fires it first, and that
     * fixed order is part of the determinism contract. */
    static void
    armHedge(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        op->hedgeFlags = kHedgeArmed;
        op->hedgeHolds = 1;
        op->status = IoStatus::Ok;
        ++c.hedgedLive_;
        c.eq_.scheduleIn(c.hedgeTicks_, [op] { hedgeDeadline(op); });
        c.issueUnit(op->dst0, false, &hedgePrimaryDone, op);
    }

    /** The deadline fired: launch the reconstruct race unless the
     * primary already finished (or a hedge is somehow already up). */
    static void
    hedgeDeadline(IoOp *op)
    {
        const std::uint8_t f = op->hedgeFlags;
        if (!(f & (kHedgeResolved | kHedgePrimaryDone | kHedgeLaunched)))
            tryLaunchHedge(op);
        dropHold(op);
    }

    /**
     * Start the reconstruct side of a hedged read: acquire the stripe
     * lock and read the G-1 survivors. Returns false — without
     * launching — if the stripe cannot supply the value (already
     * unrecoverable, or a survivor is lost).
     */
    static bool
    tryLaunchHedge(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        if (c.stripeUnrecoverable(op->su.stripe) ||
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos))
            return false;
        op->hedgeFlags |= kHedgeLaunched;
        ++op->hedgeHolds;
        DECLUST_PERF_INC(HedgesLaunched);
        ++c.hedgeStats_.launched;
        op->resume = &hedgeResume;
        op->mid = c.eq_.now();
        if (c.locks_.acquire(op->su.stripe, op))
            hedgeLocked(op);
        return true;
    }

    static void
    hedgeResume(StripeLockTable::Waiter *w)
    {
        IoOp *op = fromWaiter(w);
        DECLUST_PERF_HIST(LockWaitTicks, op->ctl->eq_.now() - op->mid);
        hedgeLocked(op);
    }

    /** The hedge chain cannot deliver (the stripe lost a survivor).
     * With the primary already failed this is a lost read; otherwise
     * the primary is still in flight and may yet succeed, so the chain
     * just steps aside. Called with the stripe lock held. */
    static void
    hedgeChainFailed(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        if (op->hedgeFlags & kHedgePrimaryDone) {
            lostHedged(op, /*locked=*/true);
        } else {
            op->hedgeFlags |= kHedgeFailed;
            c.locks_.release(op->su.stripe);
        }
        hedgeEnd(op);
    }

    static void
    hedgeLocked(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        if (op->hedgeFlags & kHedgeResolved) {
            // The primary finished while the hedge waited for the lock.
            DECLUST_PERF_INC(HedgeWasted);
            ++c.hedgeStats_.wasted;
            c.locks_.release(op->su.stripe);
            hedgeEnd(op);
            return;
        }
        // Re-check under the lock: a failure may have landed while this
        // op waited.
        if (c.stripeUnrecoverable(op->su.stripe) ||
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos)) {
            hedgeChainFailed(op);
            return;
        }
        const int G = c.layout_->stripeWidth();
        op->pending = G - 1;
        for (int pos = 0; pos < G; ++pos) {
            if (pos == op->su.pos)
                continue;
            c.issueUnit(c.effectiveUnit(op->su.stripe, pos), false,
                        &hedgeRead, op);
        }
    }

    static void
    hedgeRead(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (--op->pending != 0)
            return;
        ArrayController &c = *op->ctl;
        if (op->hedgeFlags & kHedgeResolved) {
            // The primary beat the reconstruction: drain and discard.
            DECLUST_PERF_INC(HedgeWasted);
            ++c.hedgeStats_.wasted;
            c.locks_.release(op->su.stripe);
            hedgeEnd(op);
            return;
        }
        if (op->status != IoStatus::Ok) {
            hedgeChainFailed(op);
            return;
        }
        c.afterXor(c.layout_->stripeWidth() - 1, &hedgeCombined, op);
    }

    static void
    hedgeCombined(void *ctx)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        if (op->hedgeFlags & kHedgeResolved) {
            // The primary completed while the XOR charge was pending.
            DECLUST_PERF_INC(HedgeWasted);
            ++c.hedgeStats_.wasted;
            c.locks_.release(op->su.stripe);
            hedgeEnd(op);
            return;
        }
        // A second disk may have died after the survivor reads
        // completed, poisoning a unit this XOR would use.
        if (c.secondFailedDisk_ >= 0 &&
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos)) {
            hedgeChainFailed(op);
            return;
        }
        op->v = c.xorStripeExcept(op->su.stripe, op->su.pos);
        DECLUST_ASSERT(op->v == c.shadow_.get(op->dataUnit),
                       "hedged reconstruction of unit ", op->dataUnit,
                       " produced wrong data");
        op->hedgeFlags |= kHedgeResolved;
        DECLUST_PERF_INC(HedgeWins);
        ++c.hedgeStats_.wins;
        userPartDone(op);
        if ((op->hedgeFlags & kHedgePrimaryDone) && op->repairRewrite) {
            // The primary reported a medium error before the hedge won:
            // rewrite the recovered value to the (remapped) home
            // sector, still under the stripe lock.
            ++c.faultStats_.sectorRepairs;
            c.issueUnit(op->dst0, true, &hedgeRewritten, op);
            return;
        }
        c.locks_.release(op->su.stripe);
        hedgeEnd(op);
    }

    static void
    hedgeRewritten(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        noteRawStatus(c, status);
        // The in-memory model never corrupted the value (see
        // readRepairWritten); only the media state changed.
        c.locks_.release(op->su.stripe);
        hedgeEnd(op);
    }

    /** Primary completion of a hedged read. */
    static void
    hedgePrimaryDone(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        noteRawStatus(c, status);
        op->hedgeFlags |= kHedgePrimaryDone;
        if (op->hedgeFlags & kHedgeResolved) {
            // The hedge already delivered the value; the slow primary
            // lost the race. When it lost with a medium error, the home
            // rewrite is skipped — the model's contents were never
            // corrupted, so the divergence is accounting only.
            opRelease(op);
            return;
        }
        if (status == IoStatus::Ok) {
            const UnitValue got = c.contents_.get(op->dst0.disk,
                                                  op->dst0.offset);
            DECLUST_ASSERT(got == c.shadow_.get(op->dataUnit),
                           "read of unit ", op->dataUnit,
                           " returned wrong data");
            op->hedgeFlags |= kHedgeResolved;
            userPartDone(op);
            opRelease(op);
            return;
        }
        // The primary failed. The hedge chain is exactly the parity
        // repair a non-hedged read would run (see startReadRepair); if
        // it is already in flight, let it deliver. If it already ended,
        // it ended without delivering (a delivered chain sets
        // kHedgeResolved, handled above), so both sides have lost.
        op->repairRewrite = status == IoStatus::MediumError;
        if (op->hedgeFlags & kHedgeLaunched) {
            if (op->hedgeFlags & kHedgeEnded)
                lostHedged(op, /*locked=*/false);
            opRelease(op);
            return;
        }
        if (!tryLaunchHedge(op))
            lostHedged(op, /*locked=*/false);
        opRelease(op);
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    static void
    startWrite(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        op->resume = &writeCriticalResume;
        op->mid = c.eq_.now();
        if (c.locks_.acquire(op->su.stripe, op))
            writeCriticalStep(op);
    }

    static void
    writeCriticalResume(StripeLockTable::Waiter *w)
    {
        IoOp *op = fromWaiter(w);
        DECLUST_PERF_HIST(LockWaitTicks, op->ctl->eq_.now() - op->mid);
        writeCriticalStep(op);
    }

    static void
    writeCriticalStep(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        const int G = c.layout_->stripeWidth();
        const std::int64_t stripe = op->su.stripe;

        if (c.stripeUnrecoverable(stripe)) {
            finishLostWrite(op, /*locked=*/true);
            return;
        }

        const bool dataLost = c.unitLost(op->data);
        const bool parityLost = c.unitLost(op->parity);
        if (dataLost && !c.stripeRecoverableExcept(stripe, op->su.pos)) {
            // The target is lost AND so is a second unit of its stripe
            // (its parity, or a data unit the degraded write would have
            // to read): nothing consistent can be written.
            loseStripe(c, stripe);
            finishLostWrite(op, /*locked=*/true);
            return;
        }
        op->v = c.values_.fresh();

        // Where the (valid) data and parity currently live: the layout
        // location, or the stripe's spare after a distributed rebuild.
        op->dst0 = c.effectiveUnit(stripe, op->su.pos); // data home
        op->dst1 = c.effectiveUnit(stripe, G - 1);      // parity home

        if (parityLost) {
            // The parity unit is gone: there is no value in updating it,
            // so the write is a single data access (the paper's
            // degraded-mode "one, rather than four, disk accesses" case).
            DECLUST_PERF_INC(ParityLostWrites);
            c.issueUnit(op->dst0, true, &writeParityLostDone, op);
            return;
        }

        if (dataLost) {
            DECLUST_PERF_INC(DegradedWrites);
            // Write-through sends the new data to its rebuild home; that
            // only exists for units of the disk under reconstruction
            // (not for units lost to a second failure).
            const bool writeThrough =
                c.reconActive_ &&
                c.algorithm_ != ReconAlgorithm::Baseline &&
                op->data.disk == c.failedDisk_;
            if (G == 2) {
                // Mirrored pair with a lost primary: just write the copy
                // (new "parity" = the new value itself).
                op->aux = op->v;
                if (writeThrough)
                    startDegradedWriteThrough(op);
                else
                    c.issueUnit(op->dst1, true, &writeFoldedDone, op);
                return;
            }
            // The target data unit is lost. Read the other G-2 data
            // units; the new parity is their XOR with the new data.
            if (G == 3) {
                // Only one other data unit to read.
                const int otherPos = op->su.pos == 0 ? 1 : 0;
                op->pending = 1;
                c.issueUnit(c.effectiveUnit(stripe, otherPos), false,
                            &degradedWriteRead, op);
            } else {
                op->pending = G - 2;
                for (int pos = 0; pos < G - 1; ++pos) {
                    if (pos == op->su.pos)
                        continue;
                    c.issueUnit(c.effectiveUnit(stripe, pos), false,
                                &degradedWriteRead, op);
                }
            }
            return;
        }

        // Both the data and parity units are readable.
        if (G == 2) {
            // Mirrored write: update both copies in parallel.
            DECLUST_PERF_INC(MirroredWrites);
            op->pending = 2;
            c.issueUnit(op->dst0, true, &writePairDone, op);
            c.issueUnit(op->dst1, true, &writePairDone, op);
            return;
        }
        if (G == 3) {
            const int otherPos = op->su.pos == 0 ? 1 : 0;
            const PhysicalUnit otherRaw = c.layout_->place(stripe,
                                                           otherPos);
            if (!c.unitLost(otherRaw)) {
                // Three-access reconstruct-write (section 6): write the
                // new data and read the other data unit in parallel,
                // then write parity computed from the two.
                DECLUST_PERF_INC(ReconstructWrites);
                op->dst2 = c.effectiveUnit(stripe, otherPos);
                op->pending = 2;
                c.issueUnit(op->dst0, true, &reconWriteForked, op);
                c.issueUnit(op->dst2, false, &reconWriteForked, op);
                return;
            }
        }

        // Standard four-access read-modify-write: pre-read old data and
        // old parity, then overwrite both.
        DECLUST_PERF_INC(RmwWrites);
        op->pending = 2;
        c.issueUnit(op->dst0, false, &rmwPreRead, op);
        c.issueUnit(op->dst1, false, &rmwPreRead, op);
    }

    /** Shared failure epilogue for write flows: when any disk access of
     * the flow failed, the write is conservatively recorded as lost (the
     * stripe becomes unrecoverable; contents and shadow stay untouched,
     * so no partially-applied state is ever modeled). Returns true when
     * the flow was terminated. Requires the stripe lock held. */
    static bool
    writeFlowFailed(IoOp *op)
    {
        if (op->status == IoStatus::Ok)
            return false;
        ArrayController &c = *op->ctl;
        loseStripe(c, op->su.stripe);
        finishLostWrite(op, /*locked=*/true);
        return true;
    }

    static void
    writeParityLostDone(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (writeFlowFailed(op))
            return;
        ArrayController &c = *op->ctl;
        c.contents_.set(op->dst0.disk, op->dst0.offset, op->v);
        c.shadow_.set(op->dataUnit, op->v);
        c.locks_.release(op->su.stripe);
        finishPart(op);
    }

    /** Folded degraded write: only the parity unit is rewritten (with
     * op->aux, the new parity). */
    static void
    writeFoldedDone(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (writeFlowFailed(op))
            return;
        ArrayController &c = *op->ctl;
        c.contents_.set(op->dst1.disk, op->dst1.offset, op->aux);
        c.shadow_.set(op->dataUnit, op->v);
        c.locks_.release(op->su.stripe);
        finishPart(op);
    }

    static void
    degradedWriteRead(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (--op->pending != 0)
            return;
        if (writeFlowFailed(op))
            return;
        ArrayController &c = *op->ctl;
        // New parity = XOR of G-2 survivors and the new data.
        c.afterXor(c.layout_->stripeWidth() - 1, &degradedWriteCombine,
                   op);
    }

    static void
    degradedWriteCombine(void *ctx)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        const int G = c.layout_->stripeWidth();
        UnitValue othersXor = 0;
        UnitValue vals[ArrayController::kMaxCheckedStripeWidth];
        int n = 0;
        for (int pos = 0; pos < G - 1; ++pos) {
            if (pos == op->su.pos)
                continue;
            const PhysicalUnit pu = c.effectiveUnit(op->su.stripe, pos);
            const UnitValue v = c.contents_.get(pu.disk, pu.offset);
            othersXor ^= v;
            vals[n++] = v;
        }
        vals[n++] = op->v;
        op->aux = othersXor ^ op->v;
        c.checkCombine("degraded-write-fold", vals, n, op->aux);
        const bool writeThrough =
            c.reconActive_ &&
            c.algorithm_ != ReconAlgorithm::Baseline &&
            op->data.disk == c.failedDisk_;
        if (writeThrough)
            startDegradedWriteThrough(op);
        else
            c.issueUnit(op->dst1, true, &writeFoldedDone, op);
    }

    /** Send the data to its rebuild home as well as folding the new
     * parity (user-writes and both redirect algorithms). */
    static void
    startDegradedWriteThrough(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        op->dst2 = c.rebuildTarget(op->su.stripe, op->data.offset);
        op->pending = 2;
        c.issueUnit(op->dst1, true, &degradedWriteThroughDone, op);
        c.issueUnit(op->dst2, true, &degradedWriteThroughDone, op);
    }

    static void
    degradedWriteThroughDone(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (--op->pending != 0)
            return;
        if (writeFlowFailed(op))
            return;
        ArrayController &c = *op->ctl;
        c.contents_.set(op->dst1.disk, op->dst1.offset, op->aux);
        c.contents_.set(op->dst2.disk, op->dst2.offset, op->v);
        c.shadow_.set(op->dataUnit, op->v);
        c.markReconstructed(op->data.offset);
        c.locks_.release(op->su.stripe);
        finishPart(op);
    }

    static void
    writePairDone(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (--op->pending != 0)
            return;
        if (writeFlowFailed(op))
            return;
        ArrayController &c = *op->ctl;
        c.contents_.set(op->dst0.disk, op->dst0.offset, op->v);
        c.contents_.set(op->dst1.disk, op->dst1.offset, op->v);
        c.shadow_.set(op->dataUnit, op->v);
        c.locks_.release(op->su.stripe);
        finishPart(op);
    }

    static void
    reconWriteForked(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (--op->pending != 0)
            return;
        if (writeFlowFailed(op))
            return;
        op->ctl->afterXor(2, &reconWriteCombine, op);
    }

    static void
    reconWriteCombine(void *ctx)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        const UnitValue other =
            c.contents_.get(op->dst2.disk, op->dst2.offset);
        op->aux = other ^ op->v;
        const UnitValue vals[2] = {other, op->v};
        c.checkCombine("reconstruct-write", vals, 2, op->aux);
        c.issueUnit(op->dst1, true, &reconWriteParityDone, op);
    }

    static void
    reconWriteParityDone(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (writeFlowFailed(op))
            return;
        ArrayController &c = *op->ctl;
        c.contents_.set(op->dst0.disk, op->dst0.offset, op->v);
        c.contents_.set(op->dst1.disk, op->dst1.offset, op->aux);
        c.shadow_.set(op->dataUnit, op->v);
        c.locks_.release(op->su.stripe);
        finishPart(op);
    }

    static void
    rmwPreRead(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (--op->pending != 0)
            return;
        if (writeFlowFailed(op))
            return;
        // New parity combines old data, old parity, and the new data.
        op->ctl->afterXor(3, &rmwCombine, op);
    }

    static void
    rmwCombine(void *ctx)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        const UnitValue oldData = c.contents_.get(op->dst0.disk,
                                                  op->dst0.offset);
        const UnitValue oldParity = c.contents_.get(op->dst1.disk,
                                                    op->dst1.offset);
        op->aux = oldParity ^ oldData ^ op->v;
        const UnitValue vals[3] = {oldData, oldParity, op->v};
        c.checkCombine("read-modify-write", vals, 3, op->aux);
        op->pending = 2;
        c.issueUnit(op->dst0, true, &rmwWriteDone, op);
        c.issueUnit(op->dst1, true, &rmwWriteDone, op);
    }

    static void
    rmwWriteDone(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (--op->pending != 0)
            return;
        if (writeFlowFailed(op))
            return;
        ArrayController &c = *op->ctl;
        c.contents_.set(op->dst0.disk, op->dst0.offset, op->v);
        c.contents_.set(op->dst1.disk, op->dst1.offset, op->aux);
        c.shadow_.set(op->dataUnit, op->v);
        c.locks_.release(op->su.stripe);
        finishPart(op);
    }

    // ------------------------------------------------------------------
    // Large writes
    // ------------------------------------------------------------------

    static void
    largeWriteResume(StripeLockTable::Waiter *w)
    {
        IoOp *op = fromWaiter(w);
        DECLUST_PERF_HIST(LockWaitTicks, op->ctl->eq_.now() - op->mid);
        largeWriteStep(op);
    }

    static void
    largeWriteStep(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        DECLUST_ASSERT(c.failedDisk_ < 0,
                       "large-write path requires a fault-free array");
        DECLUST_PERF_INC(LargeWrites);
        const int G = c.layout_->stripeWidth();
        const std::int64_t stripe = op->su.stripe;
        // Generate and record the fresh contents up front, under the
        // stripe lock. Contents and shadow always change together within
        // this one event, so a concurrent healthy read (which compares
        // the two) sees either the old pair or the new pair — never a
        // mix — and the fault-free requirement rules out every flow that
        // reads this stripe's parity before we release.
        UnitValue parity = 0;
        UnitValue vals[ArrayController::kMaxCheckedStripeWidth];
        int n = 0;
        for (int pos = 0; pos < G - 1; ++pos) {
            const UnitValue value = c.values_.fresh();
            parity ^= value;
            vals[n++] = value;
            const PhysicalUnit pu = c.effectiveUnit(stripe, pos);
            c.contents_.set(pu.disk, pu.offset, value);
            c.shadow_.set(
                c.layout_->stripeToDataUnit(StripeUnit{stripe, pos}),
                value);
        }
        c.checkCombine("large-write", vals, n, parity);
        const PhysicalUnit ppu = c.effectiveUnit(stripe, G - 1);
        c.contents_.set(ppu.disk, ppu.offset, parity);
        // The new parity XORs the G-1 fresh data units before anything
        // hits the disks.
        c.afterXor(G - 1, &largeWriteIssue, op);
    }

    static void
    largeWriteIssue(void *ctx)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        const int G = c.layout_->stripeWidth();
        op->pending = G;
        for (int pos = 0; pos < G; ++pos)
            c.issueUnit(c.effectiveUnit(op->su.stripe, pos), true,
                        &largeWriteDone, op);
    }

    static void
    largeWriteDone(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        // Writes cannot fail in this model short of a whole-disk death,
        // and the large-write path requires a fault-free array.
        DECLUST_DEBUG_ASSERT(status == IoStatus::Ok,
                             "large-write access failed");
        (void)status;
        if (--op->pending != 0)
            return;
        ArrayController &c = *op->ctl;
        c.locks_.release(op->su.stripe);
        finishPart(op);
    }

    // ------------------------------------------------------------------
    // Reconstruction cycles
    // ------------------------------------------------------------------

    static void
    finishCycle(IoOp *op, CycleResult res)
    {
        ArrayController &c = *op->ctl;
        DECLUST_ANALYZE_SUPPRESS(
            "hot-path-function: moves the reconstructor's cycle "
            "closure out of the op before recycling it — a move, not "
            "an allocating conversion");
        std::function<void(CycleResult)> done = std::move(op->cycleDone);
        c.ops_.release(op);
        done(res);
    }

    static void
    reconResume(StripeLockTable::Waiter *w)
    {
        IoOp *op = fromWaiter(w);
        DECLUST_PERF_HIST(LockWaitTicks, op->ctl->eq_.now() - op->mid);
        reconLocked(op);
    }

    /** Abandon a reconstruction cycle: the unit's stripe lost a second
     * unit, so the unit can never be regenerated. */
    static void
    reconCycleLost(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        loseStripe(c, op->su.stripe);
        c.markReconstructionLost(op->offset);
        c.locks_.release(op->su.stripe);
        CycleResult res;
        res.skipped = false;
        res.lost = true;
        finishCycle(op, res);
    }

    static void
    reconLocked(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        // A user write-through may have reconstructed it while we waited
        // (or a fault may have doomed it; either way the sweep moves on).
        if (c.reconstructed_[static_cast<std::size_t>(op->offset)] !=
            kNotRebuilt) {
            c.locks_.release(op->su.stripe);
            finishCycle(op, CycleResult{});
            return;
        }
        if (c.stripeUnrecoverable(op->su.stripe) ||
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos)) {
            reconCycleLost(op);
            return;
        }
        DECLUST_PERF_INC(ReconCycles);
        op->start = c.eq_.now(); // read-phase start
        const int G = c.layout_->stripeWidth();
        op->pending = G - 1;
        for (int p = 0; p < G; ++p) {
            if (p == op->su.pos)
                continue;
            const PhysicalUnit pu = c.effectiveUnit(op->su.stripe, p);
            DECLUST_ASSERT(pu.disk != c.failedDisk_,
                           "two stripe units on one disk");
            c.issueUnit(pu, false, &reconRead, op, Priority::Background);
        }
    }

    static void
    reconRead(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (--op->pending != 0)
            return;
        ArrayController &c = *op->ctl;
        if (op->status != IoStatus::Ok) {
            // A surviving unit of the stripe could not be read: the
            // lost unit is gone for good. Record it and keep sweeping.
            reconCycleLost(op);
            return;
        }
        c.afterXor(c.layout_->stripeWidth() - 1, &reconCombined, op);
    }

    static void
    reconCombined(void *ctx)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        // Re-check recoverability: a second disk may have died after the
        // survivor reads completed, poisoning a unit this XOR would use.
        if (c.secondFailedDisk_ >= 0 &&
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos)) {
            reconCycleLost(op);
            return;
        }
        op->mid = c.eq_.now(); // write-phase start
        op->v = c.xorStripeExcept(op->su.stripe, op->su.pos);
        op->dst0 = c.rebuildTarget(op->su.stripe, op->offset);
        c.issueUnit(op->dst0, true, &reconWritten, op,
                    Priority::Background);
    }

    static void
    reconWritten(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (op->status != IoStatus::Ok) {
            // The rebuild-target write failed (e.g. the spare's disk
            // died mid-flight): the regenerated value has no home.
            reconCycleLost(op);
            return;
        }
        ArrayController &c = *op->ctl;
        c.contents_.set(op->dst0.disk, op->dst0.offset, op->v);
        c.markReconstructed(op->offset);
        c.locks_.release(op->su.stripe);
        CycleResult res;
        res.skipped = false;
        res.readPhaseMs = ticksToMs(op->mid - op->start);
        res.writePhaseMs = ticksToMs(c.eq_.now() - op->mid);
        DECLUST_PERF_HIST(ReconReadPhaseTicks, op->mid - op->start);
        DECLUST_PERF_HIST(ReconWritePhaseTicks, c.eq_.now() - op->mid);
        finishCycle(op, res);
    }

    // ------------------------------------------------------------------
    // Scrub cycles
    //
    // An online scrub verifies one unit with a background-priority read
    // (yielding to user traffic wherever priority separation is on).
    // Clean reads end the cycle; a medium error means the drive just
    // remapped a latent defect under the scrubber instead of under a
    // future degraded read — the cycle regenerates the value from the
    // stripe's survivors and rewrites the remapped home, all at
    // background priority under the stripe lock. Scrub cycles reuse
    // the CycleResult plumbing (finishCycle) but never touch user
    // response statistics.
    // ------------------------------------------------------------------

    static void
    startScrub(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        DECLUST_PERF_INC(ScrubReads);
        c.issueUnit(op->dst0, false, &scrubReadDone, op,
                    Priority::Background);
    }

    static void
    scrubReadDone(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        noteStatus(op, status);
        if (status == IoStatus::Ok) {
            CycleResult res;
            res.skipped = false;
            finishCycle(op, res);
            return;
        }
        if (status == IoStatus::DiskFailed) {
            // The disk died with the scrub in flight: the rebuild
            // machinery owns it now.
            finishCycle(op, CycleResult{});
            return;
        }
        // Latent defect found: the drive remapped the sector and lost
        // its data. Regenerate from parity and rewrite the home.
        op->status = IoStatus::Ok;
        op->resume = &scrubRepairResume;
        op->mid = c.eq_.now();
        if (c.locks_.acquire(op->su.stripe, op))
            scrubRepairLocked(op);
    }

    static void
    scrubRepairResume(StripeLockTable::Waiter *w)
    {
        IoOp *op = fromWaiter(w);
        DECLUST_PERF_HIST(LockWaitTicks, op->ctl->eq_.now() - op->mid);
        scrubRepairLocked(op);
    }

    /** Abandon a scrub repair: the stripe cannot regenerate the unit. */
    static void
    scrubRepairLost(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        loseStripe(c, op->su.stripe);
        c.locks_.release(op->su.stripe);
        CycleResult res;
        res.skipped = false;
        res.lost = true;
        finishCycle(op, res);
    }

    static void
    scrubRepairLocked(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        if (c.stripeUnrecoverable(op->su.stripe) ||
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos)) {
            scrubRepairLost(op);
            return;
        }
        const int G = c.layout_->stripeWidth();
        op->pending = G - 1;
        for (int pos = 0; pos < G; ++pos) {
            if (pos == op->su.pos)
                continue;
            c.issueUnit(c.effectiveUnit(op->su.stripe, pos), false,
                        &scrubRepairRead, op, Priority::Background);
        }
    }

    static void
    scrubRepairRead(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        noteStatus(op, status);
        if (--op->pending != 0)
            return;
        ArrayController &c = *op->ctl;
        if (op->status != IoStatus::Ok) {
            // A survivor failed too: the scrubbed unit is gone.
            scrubRepairLost(op);
            return;
        }
        c.afterXor(c.layout_->stripeWidth() - 1, &scrubCombined, op);
    }

    static void
    scrubCombined(void *ctx)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        // Re-check recoverability: a disk may have died after the
        // survivor reads completed, poisoning a unit this XOR would use.
        if (c.secondFailedDisk_ >= 0 &&
            !c.stripeRecoverableExcept(op->su.stripe, op->su.pos)) {
            scrubRepairLost(op);
            return;
        }
        op->v = c.xorStripeExcept(op->su.stripe, op->su.pos);
        // The in-memory model never corrupted the value; the medium
        // did. The regenerated value must equal the stored one.
        DECLUST_ASSERT(op->v ==
                           c.contents_.get(op->dst0.disk, op->dst0.offset),
                       "scrub repair of stripe ", op->su.stripe, " pos ",
                       op->su.pos, " produced wrong data");
        ++c.faultStats_.sectorRepairs;
        DECLUST_PERF_INC(ScrubRepairs);
        c.issueUnit(op->dst0, true, &scrubRewritten, op,
                    Priority::Background);
    }

    static void
    scrubRewritten(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        noteStatus(op, status);
        c.locks_.release(op->su.stripe);
        CycleResult res;
        res.skipped = false;
        res.repaired = true;
        finishCycle(op, res);
    }

    // ------------------------------------------------------------------
    // Copyback cycles
    // ------------------------------------------------------------------

    static void
    copybackResume(StripeLockTable::Waiter *w)
    {
        IoOp *op = fromWaiter(w);
        DECLUST_PERF_HIST(LockWaitTicks, op->ctl->eq_.now() - op->mid);
        copybackLocked(op);
    }

    static void
    copybackLocked(IoOp *op)
    {
        ArrayController &c = *op->ctl;
        DECLUST_PERF_INC(CopybackCycles);
        op->dst0 = c.layout_->placeSpare(op->su.stripe);
        c.issueUnit(op->dst0, false, &copybackRead, op,
                    Priority::Background);
    }

    static void
    copybackRead(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        noteStatus(op, status);
        if (status != IoStatus::Ok) {
            // The spare copy could not be read back. The copy still
            // proceeds mechanically (the in-memory value is intact),
            // but the affected stripe is recorded as a loss.
            loseStripe(c, op->su.stripe);
        }
        op->v = c.contents_.get(op->dst0.disk, op->dst0.offset);
        op->dst1 = PhysicalUnit{c.remapDisk_, op->offset};
        c.issueUnit(op->dst1, true, &copybackWritten, op,
                    Priority::Background);
    }

    static void
    copybackWritten(void *ctx, IoStatus status)
    {
        IoOp *op = fromCtx(ctx);
        ArrayController &c = *op->ctl;
        noteStatus(op, status);
        c.contents_.set(c.remapDisk_, op->offset, op->v);
        // Unit lives on the replacement again; the spare slot is free.
        c.reconstructed_[static_cast<std::size_t>(op->offset)] = kNotRebuilt;
        --c.remappedCount_;
        c.locks_.release(op->su.stripe);
        std::function<void(bool)> done = std::move(op->copyDone);
        c.ops_.release(op);
        done(true);
    }

    // ------------------------------------------------------------------
    // Deferred disk issue (controller-CPU overhead path)
    // ------------------------------------------------------------------

    static void
    issueDeferred(void *ctx)
    {
        auto *d = static_cast<ArrayController::DeferredIssue *>(ctx);
#if DECLUST_VALIDATE
        DECLUST_VALIDATE_CHECK(!looksPoisoned(d->ctl),
                               "deferred issue fired on a released "
                               "carrier at ", ctx);
        d->ctl->deferredPool_.checkHandle(d, d->gen, "DeferredIssue");
#endif
        ArrayController *c = d->ctl;
        const int disk = d->disk;
        const DiskRequest req = d->req;
        d->~DeferredIssue();
        c->deferredPool_.deallocate(d);
        c->disks_[static_cast<std::size_t>(disk)]->submit(req);
    }
};

// ----------------------------------------------------------------------

ArrayController::ArrayController(EventQueue &eq,
                                 std::unique_ptr<Layout> layout,
                                 const ArrayParams &params)
    : eq_(eq),
      layout_(std::move(layout)),
      params_(params),
      contents_(layout_->numDisks(), layout_->unitsPerDisk()),
      shadow_(layout_->numDataUnits()),
      values_(params.valueSeed),
      stats_(params.histogramLimitMs, params.histogramBuckets)
{
    DECLUST_ASSERT(layout_, "controller needs a layout");
    params_.geometry.validate();
    // G == 2 degenerates to mirroring: the "parity" unit of a two-unit
    // stripe is an exact copy of its data unit (XOR over one value),
    // which makes a declustered G=2 layout Copeland & Keller's
    // interleaved declustering (paper section 3).
    DECLUST_ASSERT(layout_->stripeWidth() >= 2,
                   "parity stripes need at least 2 units");
    const std::int64_t unitCapacity =
        params_.geometry.totalSectors() / params_.unitSectors;
    DECLUST_ASSERT(layout_->unitsPerDisk() <= unitCapacity,
                   "layout maps ", layout_->unitsPerDisk(),
                   " units/disk but the geometry only holds ",
                   unitCapacity);
    // The XOR charge basis is fixed here, per unit, so afterXor charges
    // are additive across batches (see xorChargeTicks). Mode On derives
    // the per-unit cost from the measured throughput of the dispatched
    // kernel tier, *replacing* the hand-picked constant.
    double xorMsPerUnit = params_.xorOverheadMsPerUnit;
    if (params_.dataPlane != ec::DataPlaneMode::Off) {
        const std::size_t unitBytes =
            static_cast<std::size_t>(params_.unitSectors) *
            static_cast<std::size_t>(params_.geometry.sectorBytes);
        DECLUST_ASSERT(layout_->stripeWidth() <= kMaxCheckedStripeWidth,
                       "data-plane combine checks support stripes up to ",
                       kMaxCheckedStripeWidth, " units wide");
        plane_ = std::make_unique<ec::DataPlane>(params_.dataPlane,
                                                 unitBytes);
        if (params_.dataPlane == ec::DataPlaneMode::On) {
            const ec::Tier tier = plane_->tier();
            if (!ec::xorCostCalibrated(tier))
                DECLUST_FATAL(
                    "--data-plane on needs a calibrated XOR throughput "
                    "for kernel tier ", ec::tierName(tier),
                    "; run bench_ec_kernels --json and "
                    "tools/calibrate_xor.py (see src/ec/cost_model.hpp)");
            xorMsPerUnit = ec::xorMsPerUnit(unitBytes, tier);
        }
    }
    xorTicksPerUnit_ = msToTicks(xorMsPerUnit);
    if (params_.controllerOverheadMs > 0 || xorTicksPerUnit_ > 0) {
        cpu_ = std::make_unique<SerialResource>(eq_);
    }
    if (params_.hedgeAfterMs < 0)
        DECLUST_FATAL("hedge deadline ", params_.hedgeAfterMs,
                      " ms is negative (0 disables hedging)");
    hedgeTicks_ = msToTicks(params_.hedgeAfterMs);
    if (params_.hedgeAfterMs > 0 && hedgeTicks_ <= 0)
        DECLUST_FATAL("hedge deadline ", params_.hedgeAfterMs,
                      " ms rounds to zero ticks; use 0 to disable "
                      "hedging or a deadline of at least one tick");
    // Pre-size the pending set for the steady-state event population:
    // each disk contributes a handful of in-flight events (completion,
    // scheduler hand-off, track-buffer timer) and the workload/recon
    // layers keep a bounded backlog on top. Over-estimating costs a few
    // kilobytes; under-estimating only costs growth reallocations that
    // the alloc-guard test would surface.
    eq_.reserve(static_cast<std::size_t>(layout_->numDisks()) * 16 + 128);
    for (int d = 0; d < layout_->numDisks(); ++d) {
        auto background =
            params_.prioritizeUserIo
                ? makeScheduler(params_.scheduler,
                                params_.geometry.cylinders)
                : nullptr;
        disks_.push_back(std::make_unique<Disk>(
            eq_, params_.geometry,
            makeScheduler(params_.scheduler, params_.geometry.cylinders),
            d, std::move(background)));
        if (params_.trackBuffer)
            disks_.back()->enableTrackBuffer();
    }
}

ArrayController::UnitLoc
ArrayController::locate(std::int64_t dataUnit) const
{
    UnitLoc loc;
    loc.su = layout_->dataUnitToStripe(dataUnit);
    loc.data = layout_->place(loc.su.stripe, loc.su.pos);
    loc.parity = layout_->placeParity(loc.su.stripe);
    return loc;
}

void
ArrayController::issueUnit(const PhysicalUnit &pu, bool isWrite,
                           void (*cb)(void *, IoStatus), void *ctx,
                           Priority priority)
{
    if (isWrite) {
        if (priority == Priority::Background)
            DECLUST_PERF_INC(DiskWriteBackground);
        else
            DECLUST_PERF_INC(DiskWriteUser);
    } else {
        if (priority == Priority::Background)
            DECLUST_PERF_INC(DiskReadBackground);
        else
            DECLUST_PERF_INC(DiskReadUser);
    }
    DiskRequest req;
    req.startSector =
        static_cast<std::int64_t>(pu.offset) * params_.unitSectors;
    req.sectorCount = params_.unitSectors;
    req.isWrite = isWrite;
    req.priority = priority;
    req.onComplete = cb;
    req.ctx = ctx;
    if (cpu_ && params_.controllerOverheadMs > 0) {
        // The access occupies the (serial) controller CPU before it can
        // reach the disk; the request rides in a pooled carrier rather
        // than a lambda capture.
        DECLUST_PERF_INC(DeferredIssues);
        void *mem = deferredPool_.allocate();
        auto *d = new (mem) DeferredIssue{this, pu.disk, req};
#if DECLUST_VALIDATE
        d->gen = deferredPool_.generation(d);
#endif
        cpu_->use(msToTicks(params_.controllerOverheadMs),
                  &IoSteps::issueDeferred, d);
        return;
    }
    disks_[static_cast<std::size_t>(pu.disk)]->submit(req);
}

void
ArrayController::afterXor(int units, void (*fn)(void *), void *ctx)
{
    const Tick charge = xorChargeTicks(units);
    if (cpu_ && charge > 0) {
        cpu_->use(charge, fn, ctx);
        return;
    }
    fn(ctx);
}

bool
ArrayController::unitLost(const PhysicalUnit &pu) const
{
    if (pu.disk == secondFailedDisk_)
        return true;
    if (pu.disk != failedDisk_)
        return false;
    return !reconActive_ ||
           reconstructed_[static_cast<std::size_t>(pu.offset)] != kRebuilt;
}

PhysicalUnit
ArrayController::effectiveUnit(std::int64_t stripe, int pos) const
{
    const PhysicalUnit pu = layout_->place(stripe, pos);
    const bool spared =
        (reconActive_ && distributedSpare_ && pu.disk == failedDisk_) ||
        (remapActive_ && pu.disk == remapDisk_);
    if (spared &&
        reconstructed_[static_cast<std::size_t>(pu.offset)] == kRebuilt)
        return layout_->placeSpare(stripe);
    return pu;
}

bool
ArrayController::stripeRecoverableExcept(std::int64_t stripe,
                                         int excludePos) const
{
    for (int pos = 0; pos < layout_->stripeWidth(); ++pos) {
        if (pos == excludePos)
            continue;
        const PhysicalUnit pu = layout_->place(stripe, pos);
        if (unitLost(pu))
            return false;
        // A rebuilt unit living in a spare slot of a now-dead disk is
        // just as gone as its original.
        if (effectiveUnit(stripe, pos).disk == secondFailedDisk_)
            return false;
    }
    return true;
}

bool
ArrayController::markStripeUnrecoverable(std::int64_t stripe)
{
    DECLUST_ANALYZE_SUPPRESS(
        "hot-path-growth: lazy one-time bitmap allocation at the "
        "first data-loss event — a rare fault, not steady state");
    if (unrecoverable_.empty())
        unrecoverable_.assign(
            static_cast<std::size_t>(layout_->numStripes()), 0);
    auto &flag = unrecoverable_[static_cast<std::size_t>(stripe)];
    if (flag)
        return false;
    flag = 1;
    anyUnrecoverable_ = true;
    ++faultStats_.unrecoverableStripes;
    return true;
}

void
ArrayController::markReconstructionLost(int offset)
{
    DECLUST_ASSERT(reconActive_, "no reconstruction in progress");
    auto &flag = reconstructed_[static_cast<std::size_t>(offset)];
    if (flag == kLostForever)
        return;
    if (flag == kRebuilt)
        --reconstructedCount_; // a rebuilt copy was lost again
    flag = kLostForever;
    ++reconLostCount_;
    ++faultStats_.reconUnitsLost;
}

PhysicalUnit
ArrayController::rebuildTarget(std::int64_t stripe, int offset) const
{
    if (distributedSpare_)
        return layout_->placeSpare(stripe);
    return PhysicalUnit{failedDisk_, offset};
}

UnitValue
ArrayController::xorStripeExcept(std::int64_t stripe, int excludePos) const
{
    UnitValue acc = 0;
    UnitValue vals[kMaxCheckedStripeWidth];
    int n = 0;
    for (int pos = 0; pos < layout_->stripeWidth(); ++pos) {
        if (pos == excludePos)
            continue;
        const PhysicalUnit pu = effectiveUnit(stripe, pos);
        const UnitValue v = contents_.get(pu.disk, pu.offset);
        acc ^= v;
        if (plane_)
            vals[n++] = v;
    }
    checkCombine("xor-stripe", vals, n, acc);
    return acc;
}

// ----------------------------------------------------------------------
// Reads
// ----------------------------------------------------------------------

void
ArrayController::readUnit(std::int64_t dataUnit, std::function<void()> done)
{
    DECLUST_PERF_INC(UserReads);
    ++outstanding_;
    IoOp *op = ops_.acquire();
    op->ctl = this;
    op->kind = RequestKind::Read;
    op->start = eq_.now();
    op->done = std::move(done);
    const UnitLoc loc = locate(dataUnit);
    op->su = loc.su;
    op->data = loc.data;
    op->parity = loc.parity;
    op->dataUnit = dataUnit;
    IoSteps::startRead(op);
}

void
ArrayController::readUnits(std::int64_t firstDataUnit, int count,
                           std::function<void()> done)
{
    DECLUST_ASSERT(count > 0, "empty read");
    if (count == 1) {
        readUnit(firstDataUnit, std::move(done));
        return;
    }
    DECLUST_PERF_INC(UserReads);
    ++outstanding_;
    IoOp *parent = ops_.acquire();
    parent->ctl = this;
    parent->kind = RequestKind::Read;
    parent->start = eq_.now();
    parent->pending = count;
    parent->done = std::move(done);
    for (int i = 0; i < count; ++i) {
        IoOp *part = ops_.acquire();
        part->ctl = this;
        part->parent = parent;
        part->kind = RequestKind::Read;
        const UnitLoc loc = locate(firstDataUnit + i);
        part->su = loc.su;
        part->data = loc.data;
        part->parity = loc.parity;
        part->dataUnit = firstDataUnit + i;
        IoSteps::startRead(part);
    }
}

// ----------------------------------------------------------------------
// Writes
// ----------------------------------------------------------------------

void
ArrayController::writeUnit(std::int64_t dataUnit, std::function<void()> done)
{
    DECLUST_PERF_INC(UserWrites);
    ++outstanding_;
    IoOp *op = ops_.acquire();
    op->ctl = this;
    op->kind = RequestKind::Write;
    op->start = eq_.now();
    op->done = std::move(done);
    const UnitLoc loc = locate(dataUnit);
    op->su = loc.su;
    op->data = loc.data;
    op->parity = loc.parity;
    op->dataUnit = dataUnit;
    IoSteps::startWrite(op);
}

void
ArrayController::writeUnits(std::int64_t firstDataUnit, int count,
                            std::function<void()> done)
{
    DECLUST_ASSERT(count > 0, "empty write");
    if (count == 1) {
        writeUnit(firstDataUnit, std::move(done));
        return;
    }
    DECLUST_PERF_INC(UserWrites);
    ++outstanding_;

    // Partition into whole-stripe spans (large-write optimized when
    // fault-free) and leftover single units. First pass counts the
    // parts so the parent's fan-in is set before any part can finish.
    const int dus = layout_->dataUnitsPerStripe();
    const std::int64_t end = firstDataUnit + count;
    const auto wholeStripeAt = [&](std::int64_t unit) {
        return failedDisk_ < 0 && unit % dus == 0 && unit + dus <= end;
    };
    int nParts = 0;
    for (std::int64_t unit = firstDataUnit; unit < end;
         unit += wholeStripeAt(unit) ? dus : 1)
        ++nParts;

    IoOp *parent = ops_.acquire();
    parent->ctl = this;
    parent->kind = RequestKind::Write;
    parent->start = eq_.now();
    parent->pending = nParts;
    parent->done = std::move(done);

    std::int64_t unit = firstDataUnit;
    while (unit < end) {
        IoOp *part = ops_.acquire();
        part->ctl = this;
        part->parent = parent;
        part->kind = RequestKind::Write;
        if (wholeStripeAt(unit)) {
            part->su = StripeUnit{unit / dus, 0};
            part->resume = &IoSteps::largeWriteResume;
            part->mid = eq_.now();
            if (locks_.acquire(part->su.stripe, part))
                IoSteps::largeWriteStep(part);
            unit += dus;
        } else {
            const UnitLoc loc = locate(unit);
            part->su = loc.su;
            part->data = loc.data;
            part->parity = loc.parity;
            part->dataUnit = unit;
            part->resume = &IoSteps::writeCriticalResume;
            part->mid = eq_.now();
            if (locks_.acquire(part->su.stripe, part))
                IoSteps::writeCriticalStep(part);
            ++unit;
        }
    }
}

// ----------------------------------------------------------------------
// Failure and reconstruction
// ----------------------------------------------------------------------

bool
ArrayController::quiescent() const
{
    if (outstanding_ != 0 || locks_.heldCount() != 0)
        return false;
    // Hedged records can outlive their user completion (a pending
    // deadline timer keeps the op alive); drain them too, so failure
    // injection and verification never race a live hedge.
    if (hedgedLive_ != 0)
        return false;
    if (cpu_ && (cpu_->busy() || cpu_->queued() != 0))
        return false;
    for (const auto &d : disks_)
        if (d->outstanding() != 0)
            return false;
    return true;
}

void
ArrayController::failDisk(int disk)
{
    if (disk < 0 || disk >= numDisks())
        DECLUST_FATAL("failDisk: bad disk id ", disk, " (array has ",
                      numDisks(), " disks)");
    if (disk == failedDisk_)
        DECLUST_FATAL("failDisk: disk ", disk, " is already failed");
    if (failedDisk_ >= 0)
        DECLUST_FATAL("failDisk: disk ", failedDisk_,
                      " already failed: use failSecondDisk() to model a "
                      "failure during repair");
    if (copybackActive_)
        DECLUST_FATAL("failDisk: copyback in progress; finish copying "
                      "spare units home before failing disk ", disk);
    if (remapActive_)
        DECLUST_FATAL("failDisk: units still remapped to spares: copy "
                      "back before surviving another failure");
    if (!quiescent())
        DECLUST_FATAL("failDisk requires a quiescent array (drain first)");
    failedDisk_ = disk;
    reconActive_ = false;
    contents_.poisonDisk(disk);
}

void
ArrayController::failSecondDisk(int disk)
{
    if (failedDisk_ < 0)
        DECLUST_FATAL("failSecondDisk: no first failure is outstanding "
                      "(use failDisk() for the initial failure)");
    if (disk < 0 || disk >= numDisks())
        DECLUST_FATAL("failSecondDisk: bad disk id ", disk,
                      " (array has ", numDisks(), " disks)");
    if (disk == failedDisk_)
        DECLUST_FATAL("failSecondDisk: disk ", disk,
                      " is already the failed disk");
    if (secondFailedDisk_ >= 0)
        DECLUST_FATAL("failSecondDisk: disk ", secondFailedDisk_,
                      " already failed second; a single-failure-"
                      "correcting array cannot track a third failure");
    secondFailedDisk_ = disk;
    // Unlike the first (quiescent) failure, the disk dies live: queued
    // requests complete immediately with DiskFailed, the in-flight one
    // at its scheduled time.
    disks_[static_cast<std::size_t>(disk)]->fail();
    contents_.poisonDisk(disk);

    // Every stripe that now misses two units is gone. One batch of
    // losses from one disk failure is one data-loss event.
    bool anyLost = false;
    const int G = layout_->stripeWidth();
    for (int off = 0; off < unitsPerDisk(); ++off) {
        const auto su = layout_->invert(disk, off);
        if (!su)
            continue;
        if (su->pos >= G) {
            // A spare unit on the dead disk: if a rebuilt copy of the
            // first disk's unit lived there, that copy is gone again.
            if (!reconActive_ || !distributedSpare_)
                continue;
            for (int pos = 0; pos < G; ++pos) {
                const PhysicalUnit pu = layout_->place(su->stripe, pos);
                if (pu.disk != failedDisk_)
                    continue;
                if (reconstructed_[static_cast<std::size_t>(pu.offset)] ==
                    kRebuilt) {
                    markReconstructionLost(pu.offset);
                    if (markStripeUnrecoverable(su->stripe))
                        anyLost = true;
                }
                break;
            }
            continue;
        }
        // A live stripe member on the dead disk: the stripe is doomed
        // iff it also has a (still-lost) unit on the first failed disk.
        for (int pos = 0; pos < G; ++pos) {
            if (pos == su->pos)
                continue;
            const PhysicalUnit pu = layout_->place(su->stripe, pos);
            if (pu.disk != failedDisk_)
                continue;
            if (unitLost(pu)) {
                if (reconActive_)
                    markReconstructionLost(pu.offset);
                if (markStripeUnrecoverable(su->stripe))
                    anyLost = true;
            }
            break;
        }
    }
    if (anyLost)
        ++faultStats_.dataLossEvents;
}

void
ArrayController::attachFaultModels(const FaultConfig &config)
{
    for (int d = 0; d < numDisks(); ++d)
        disks_[static_cast<std::size_t>(d)]->setFaultModel(
            std::make_unique<FaultModel>(
                config, params_.geometry.totalSectors(), d));
}

void
ArrayController::beginFailSlow(int disk, const FailSlowConfig &slow)
{
    if (disk < 0 || disk >= numDisks())
        DECLUST_FATAL("fail-slow: bad disk id ", disk, " (array has ",
                      numDisks(), " disks)");
    if (disk == failedDisk_ || disk == secondFailedDisk_)
        DECLUST_FATAL("fail-slow: disk ", disk,
                      " has already hard-failed; a dead disk cannot "
                      "degrade");
    disks_[static_cast<std::size_t>(disk)]->beginFailSlow(slow);
}

void
ArrayController::scrubUnit(std::int64_t stripe, int pos,
                           std::function<void(CycleResult)> done)
{
    if (stripe < 0 || stripe >= layout_->numStripes())
        DECLUST_FATAL("scrub: bad stripe ", stripe, " (array has ",
                      layout_->numStripes(), " stripes)");
    if (pos < 0 || pos >= layout_->stripeWidth())
        DECLUST_FATAL("scrub: bad stripe position ", pos,
                      " (stripes are ", layout_->stripeWidth(),
                      " units wide)");
    const PhysicalUnit pu = effectiveUnit(stripe, pos);
    if (pu.disk == failedDisk_ || pu.disk == secondFailedDisk_)
        DECLUST_FATAL("scrub: stripe ", stripe, " pos ", pos,
                      " lives on failed disk ", pu.disk,
                      "; scrubbing needs a live disk");
    IoOp *op = ops_.acquire();
    op->ctl = this;
    op->su = StripeUnit{stripe, pos};
    op->dst0 = pu;
    op->cycleDone = std::move(done);
    IoSteps::startScrub(op);
}

void
ArrayController::attachCommon(ReconAlgorithm algorithm)
{
    DECLUST_ASSERT(failedDisk_ >= 0, "no failed disk to replace");
    DECLUST_ASSERT(!reconActive_, "reconstruction already running");
    algorithm_ = algorithm;
    reconActive_ = true;
    DECLUST_ANALYZE_SUPPRESS(
        "hot-path-growth: rebuild-start bookkeeping runs once per "
        "spare attach (reachable from the cluster advance loop only "
        "through ClusterRunner's rare begin-rebuild barrier event), "
        "never in per-request steady state");
    reconstructed_.assign(static_cast<std::size_t>(unitsPerDisk()),
                          kNotRebuilt);
    reconstructedCount_ = 0;
    reconLostCount_ = 0;
    mappedOnFailed_ = 0;
    for (int off = 0; off < unitsPerDisk(); ++off) {
        const auto su = layout_->invert(failedDisk_, off);
        // Spare units (pos == stripeWidth()) hold no protected data and
        // are not reconstructible.
        if (su && su->pos < layout_->stripeWidth())
            ++mappedOnFailed_;
    }
}

void
ArrayController::attachReplacement(ReconAlgorithm algorithm)
{
    DECLUST_ASSERT(failedDisk_ >= 0, "no failed disk to replace");
    // A disk that died live (second failure, later promoted to be the
    // outstanding one) is swapped for a fresh drive here.
    if (disks_[static_cast<std::size_t>(failedDisk_)]->failed())
        disks_[static_cast<std::size_t>(failedDisk_)]->replace();
    contents_.blankDisk(failedDisk_);
    distributedSpare_ = false;
    attachCommon(algorithm);
}

void
ArrayController::attachDistributedSpare(ReconAlgorithm algorithm)
{
    DECLUST_ASSERT(layout_->hasSpareUnits(),
                   "this layout has no distributed spare units");
    DECLUST_ASSERT(!remapActive_, "spares already in use");
    distributedSpare_ = true;
    attachCommon(algorithm);
}

bool
ArrayController::isReconstructed(int offset) const
{
    DECLUST_ASSERT(reconActive_, "no reconstruction in progress");
    return reconstructed_[static_cast<std::size_t>(offset)] != 0;
}

std::int64_t
ArrayController::unrecoverableStripesIf(int secondDisk) const
{
    DECLUST_ASSERT(failedDisk_ >= 0, "no failed disk");
    DECLUST_ASSERT(secondDisk >= 0 && secondDisk < numDisks() &&
                       secondDisk != failedDisk_,
                   "second disk must be a different live disk");
    std::int64_t lost = 0;
    for (int off = 0; off < unitsPerDisk(); ++off) {
        const auto su = layout_->invert(failedDisk_, off);
        if (!su)
            continue;
        if (reconActive_ && reconstructed_[static_cast<std::size_t>(off)])
            continue; // this unit is already safe on the replacement
        for (int pos = 0; pos < layout_->stripeWidth(); ++pos) {
            if (pos == su->pos)
                continue;
            if (layout_->place(su->stripe, pos).disk == secondDisk) {
                ++lost;
                break;
            }
        }
    }
    return lost;
}

void
ArrayController::markReconstructed(int offset)
{
    DECLUST_ASSERT(reconActive_, "no reconstruction in progress");
    auto &flag = reconstructed_[static_cast<std::size_t>(offset)];
    if (flag == kNotRebuilt) {
        flag = kRebuilt;
        ++reconstructedCount_;
    }
}

void
ArrayController::reconstructOffset(int offset,
                                   std::function<void(CycleResult)> done)
{
    DECLUST_ASSERT(reconActive_, "no reconstruction in progress");
    DECLUST_ASSERT(offset >= 0 && offset < unitsPerDisk(),
                   "offset out of range");

    const auto su = layout_->invert(failedDisk_, offset);
    if (!su || su->pos >= layout_->stripeWidth() ||
        reconstructed_[static_cast<std::size_t>(offset)]) {
        // Unmapped, a spare unit (nothing to regenerate), or already
        // rebuilt by user activity.
        done(CycleResult{});
        return;
    }

    IoOp *op = ops_.acquire();
    op->ctl = this;
    op->su = *su;
    op->offset = offset;
    op->cycleDone = std::move(done);
    op->resume = &IoSteps::reconResume;
    op->mid = eq_.now();
    if (locks_.acquire(op->su.stripe, op))
        IoSteps::reconLocked(op);
}

void
ArrayController::finishReconstruction()
{
    DECLUST_ASSERT(reconActive_, "no reconstruction in progress");
    DECLUST_ASSERT(reconstructedCount_ + reconLostCount_ == mappedOnFailed_,
                   "reconstruction incomplete: ", reconstructedCount_,
                   " rebuilt + ", reconLostCount_, " lost of ",
                   mappedOnFailed_, " units");
    // Verify every rebuilt unit before declaring the array healthy.
    // Unrecoverable stripes are exempt: their contents are gone by
    // definition and the array continues around them.
    for (int off = 0; off < unitsPerDisk(); ++off) {
        const auto su = layout_->invert(failedDisk_, off);
        if (!su || su->pos >= layout_->stripeWidth())
            continue; // unmapped or a (data-free) spare unit
        if (stripeUnrecoverable(su->stripe) ||
            reconstructed_[static_cast<std::size_t>(off)] == kLostForever)
            continue;
        const PhysicalUnit home = effectiveUnit(su->stripe, su->pos);
        const UnitValue stored = contents_.get(home.disk, home.offset);
        // A stripe with another unit on the second failed disk cannot be
        // parity-checked until that repair runs; the rebuilt unit itself
        // is still checked against the shadow below.
        if (secondFailedDisk_ < 0 ||
            stripeRecoverableExcept(su->stripe, su->pos)) {
            const UnitValue implied = xorStripeExcept(su->stripe, su->pos);
            DECLUST_ASSERT(stored == implied,
                           "reconstructed unit at offset ", off,
                           " disagrees with parity");
        }
        if (su->pos < layout_->dataUnitsPerStripe()) {
            DECLUST_ASSERT(stored ==
                               shadow_.get(layout_->stripeToDataUnit(*su)),
                           "reconstructed data unit at offset ", off,
                           " disagrees with shadow contents");
        }
    }
    if (distributedSpare_) {
        // Rebuilt units keep living in their spares until copyback.
        remapActive_ = true;
        remapDisk_ = failedDisk_;
        remappedCount_ = reconstructedCount_;
        reconActive_ = false;
        failedDisk_ = -1;
        // reconstructed_ is retained: it is now the remap marker (lost
        // offsets hold kLostForever and are skipped by copyback, which
        // only copies kRebuilt units home).
        for (auto &flag : reconstructed_)
            if (flag == kLostForever)
                flag = kNotRebuilt;
    } else {
        reconActive_ = false;
        failedDisk_ = -1;
        reconstructed_.clear();
    }
    if (secondFailedDisk_ >= 0) {
        // The repair of the first disk is done; the second failure now
        // becomes "the" outstanding failure awaiting its own repair.
        failedDisk_ = secondFailedDisk_;
        secondFailedDisk_ = -1;
    }
}

void
ArrayController::beginCopyback()
{
    DECLUST_ASSERT(remapActive_, "no spare remap to copy back");
    DECLUST_ASSERT(!copybackActive_, "copyback already running");
    DECLUST_ASSERT(failedDisk_ < 0 && !reconActive_,
                   "cannot copy back during a failure");
    // A fresh replacement drive arrives blank.
    contents_.blankDisk(remapDisk_);
    copybackActive_ = true;
}

void
ArrayController::copybackOffset(int offset, std::function<void(bool)> done)
{
    DECLUST_ASSERT(copybackActive_, "beginCopyback() first");
    DECLUST_ASSERT(offset >= 0 && offset < unitsPerDisk(),
                   "offset out of range");
    const auto su = layout_->invert(remapDisk_, offset);
    if (!su || su->pos >= layout_->stripeWidth() ||
        !reconstructed_[static_cast<std::size_t>(offset)]) {
        done(false);
        return;
    }
    IoOp *op = ops_.acquire();
    op->ctl = this;
    op->su = *su;
    op->offset = offset;
    op->copyDone = std::move(done);
    op->resume = &IoSteps::copybackResume;
    op->mid = eq_.now();
    if (locks_.acquire(op->su.stripe, op))
        IoSteps::copybackLocked(op);
}

void
ArrayController::finishCopyback()
{
    DECLUST_ASSERT(copybackActive_, "no copyback in progress");
    DECLUST_ASSERT(remappedCount_ == 0, "copyback incomplete: ",
                   remappedCount_, " units still remapped");
    copybackActive_ = false;
    remapActive_ = false;
    remapDisk_ = -1;
    reconstructed_.clear();
}

// ----------------------------------------------------------------------
// Statistics and verification
// ----------------------------------------------------------------------

void
ArrayController::setAccessTracer(AccessTracer tracer)
{
    for (auto &disk : disks_)
        disk->setTracer(tracer);
}

void
ArrayController::resetStats()
{
    stats_ = UserStats(params_.histogramLimitMs, params_.histogramBuckets);
    for (auto &d : disks_)
        d->resetStats();
    if (cpu_)
        cpu_->resetWindow();
}

void
ArrayController::verifyConsistency() const
{
    DECLUST_ASSERT(quiescent(), "verifyConsistency requires quiescence");
    const int G = layout_->stripeWidth();
    for (std::int64_t s = 0; s < layout_->numStripes(); ++s) {
        if (stripeUnrecoverable(s))
            continue; // contents are gone by definition
        bool stripeIntact = true;
        int lostPos = -1;
        int lostCount = 0;
        for (int pos = 0; pos < G; ++pos) {
            const PhysicalUnit pu = layout_->place(s, pos);
            if (unitLost(pu)) {
                stripeIntact = false;
                lostPos = pos;
                ++lostCount;
            }
        }
        DECLUST_ASSERT(lostCount <= 1, "stripe ", s, " misses ",
                       lostCount, " units but is not marked "
                       "unrecoverable");
        if (stripeIntact) {
            DECLUST_ASSERT(xorStripeExcept(s, -1) == 0,
                           "stripe ", s, " fails the parity invariant");
            for (int pos = 0; pos < G - 1; ++pos) {
                const PhysicalUnit pu = effectiveUnit(s, pos);
                DECLUST_ASSERT(
                    contents_.get(pu.disk, pu.offset) ==
                        shadow_.get(layout_->stripeToDataUnit(
                            StripeUnit{s, pos})),
                    "data unit (stripe ", s, ", pos ", pos,
                    ") disagrees with shadow");
            }
        } else if (lostPos < G - 1) {
            // Lost data unit: its parity-implied value must match shadow.
            DECLUST_ASSERT(
                xorStripeExcept(s, lostPos) ==
                    shadow_.get(layout_->stripeToDataUnit(
                        StripeUnit{s, lostPos})),
                "implied value of lost unit in stripe ", s,
                " disagrees with shadow");
        }
        // Lost parity unit: nothing further to check.
    }
}

} // namespace declust

#include "array/controller.hpp"

#include <algorithm>
#include <utility>

#include "sim/join.hpp"
#include "util/error.hpp"

namespace declust {

const char *
toString(ReconAlgorithm algorithm)
{
    switch (algorithm) {
      case ReconAlgorithm::Baseline:          return "baseline";
      case ReconAlgorithm::UserWrites:        return "user-writes";
      case ReconAlgorithm::Redirect:          return "redirect";
      case ReconAlgorithm::RedirectPiggyback: return "redir+piggyback";
    }
    return "?";
}

ArrayController::ArrayController(EventQueue &eq,
                                 std::unique_ptr<Layout> layout,
                                 const ArrayParams &params)
    : eq_(eq),
      layout_(std::move(layout)),
      params_(params),
      contents_(layout_->numDisks(), layout_->unitsPerDisk()),
      shadow_(layout_->numDataUnits()),
      values_(params.valueSeed),
      stats_(params.histogramLimitMs, params.histogramBuckets)
{
    DECLUST_ASSERT(layout_, "controller needs a layout");
    params_.geometry.validate();
    // G == 2 degenerates to mirroring: the "parity" unit of a two-unit
    // stripe is an exact copy of its data unit (XOR over one value),
    // which makes a declustered G=2 layout Copeland & Keller's
    // interleaved declustering (paper section 3).
    DECLUST_ASSERT(layout_->stripeWidth() >= 2,
                   "parity stripes need at least 2 units");
    const std::int64_t unitCapacity =
        params_.geometry.totalSectors() / params_.unitSectors;
    DECLUST_ASSERT(layout_->unitsPerDisk() <= unitCapacity,
                   "layout maps ", layout_->unitsPerDisk(),
                   " units/disk but the geometry only holds ",
                   unitCapacity);
    if (params_.controllerOverheadMs > 0 ||
        params_.xorOverheadMsPerUnit > 0) {
        cpu_ = std::make_unique<SerialResource>(eq_);
    }
    for (int d = 0; d < layout_->numDisks(); ++d) {
        auto background =
            params_.prioritizeUserIo
                ? makeScheduler(params_.scheduler,
                                params_.geometry.cylinders)
                : nullptr;
        disks_.push_back(std::make_unique<Disk>(
            eq_, params_.geometry,
            makeScheduler(params_.scheduler, params_.geometry.cylinders),
            d, std::move(background)));
        if (params_.trackBuffer)
            disks_.back()->enableTrackBuffer();
    }
}

ArrayController::UnitLoc
ArrayController::locate(std::int64_t dataUnit) const
{
    UnitLoc loc;
    loc.su = layout_->dataUnitToStripe(dataUnit);
    loc.data = layout_->place(loc.su.stripe, loc.su.pos);
    loc.parity = layout_->placeParity(loc.su.stripe);
    return loc;
}

void
ArrayController::issueUnit(const PhysicalUnit &pu, bool isWrite,
                           std::function<void()> cb, Priority priority)
{
    DiskRequest req;
    req.startSector =
        static_cast<std::int64_t>(pu.offset) * params_.unitSectors;
    req.sectorCount = params_.unitSectors;
    req.isWrite = isWrite;
    req.priority = priority;
    req.onComplete = std::move(cb);
    if (cpu_ && params_.controllerOverheadMs > 0) {
        // The access occupies the (serial) controller CPU before it can
        // reach the disk.
        cpu_->use(msToTicks(params_.controllerOverheadMs),
                  [this, disk = pu.disk, req = std::move(req)]() mutable {
                      disks_[static_cast<std::size_t>(disk)]->submit(
                          std::move(req));
                  });
        return;
    }
    disks_[static_cast<std::size_t>(pu.disk)]->submit(std::move(req));
}

void
ArrayController::afterXor(int units, std::function<void()> fn)
{
    const double ms = params_.xorOverheadMsPerUnit * units;
    if (cpu_ && ms > 0) {
        cpu_->use(msToTicks(ms), std::move(fn));
        return;
    }
    fn();
}

bool
ArrayController::unitLost(const PhysicalUnit &pu) const
{
    if (pu.disk != failedDisk_)
        return false;
    return !reconActive_ ||
           !reconstructed_[static_cast<std::size_t>(pu.offset)];
}

PhysicalUnit
ArrayController::effectiveUnit(std::int64_t stripe, int pos) const
{
    const PhysicalUnit pu = layout_->place(stripe, pos);
    const bool spared =
        (reconActive_ && distributedSpare_ && pu.disk == failedDisk_) ||
        (remapActive_ && pu.disk == remapDisk_);
    if (spared && reconstructed_[static_cast<std::size_t>(pu.offset)])
        return layout_->placeSpare(stripe);
    return pu;
}

PhysicalUnit
ArrayController::rebuildTarget(std::int64_t stripe, int offset) const
{
    if (distributedSpare_)
        return layout_->placeSpare(stripe);
    return PhysicalUnit{failedDisk_, offset};
}

UnitValue
ArrayController::xorStripeExcept(std::int64_t stripe, int excludePos) const
{
    UnitValue acc = 0;
    for (int pos = 0; pos < layout_->stripeWidth(); ++pos) {
        if (pos == excludePos)
            continue;
        const PhysicalUnit pu = effectiveUnit(stripe, pos);
        acc ^= contents_.get(pu.disk, pu.offset);
    }
    return acc;
}

void
ArrayController::finishUserOp(RequestKind kind, Tick start,
                              const std::function<void()> &done)
{
    const double ms = ticksToMs(eq_.now() - start);
    if (kind == RequestKind::Read) {
        stats_.readMs.add(ms);
        ++stats_.readsDone;
    } else {
        stats_.writeMs.add(ms);
        ++stats_.writesDone;
    }
    stats_.allMs.add(ms);
    stats_.allHist.add(ms);
    --outstanding_;
    if (done)
        done();
}

// ----------------------------------------------------------------------
// Reads
// ----------------------------------------------------------------------

void
ArrayController::readUnit(std::int64_t dataUnit, std::function<void()> done)
{
    ++outstanding_;
    const Tick start = eq_.now();
    const UnitLoc loc = locate(dataUnit);
    readCritical(loc, start, [this, start, done = std::move(done)] {
        finishUserOp(RequestKind::Read, start, done);
    });
}

void
ArrayController::readCritical(const UnitLoc &loc, Tick,
                              std::function<void()> done)
{
    const std::int64_t dataUnit = layout_->stripeToDataUnit(loc.su);

    const bool onFailed = loc.data.disk == failedDisk_;
    const bool redirectable =
        reconActive_ &&
        reconstructed_[static_cast<std::size_t>(loc.data.offset)] &&
        (algorithm_ == ReconAlgorithm::Redirect ||
         algorithm_ == ReconAlgorithm::RedirectPiggyback);

    if (!onFailed || redirectable) {
        // Plain read of valid contents: a healthy disk, a redirected
        // read of the rebuilt replacement/spare unit, or a remapped
        // spare location after a distributed-sparing rebuild.
        const PhysicalUnit src = effectiveUnit(loc.su.stripe, loc.su.pos);
        issueUnit(src, false,
                  [this, src, dataUnit, done = std::move(done)] {
                      const UnitValue got =
                          contents_.get(src.disk, src.offset);
                      DECLUST_ASSERT(got == shadow_.get(dataUnit),
                                     "read of unit ", dataUnit,
                                     " returned wrong data");
                      done();
                  });
        return;
    }

    // On-the-fly reconstruction: read the G-1 surviving units of the
    // stripe under the stripe lock and XOR them.
    locks_.acquire(loc.su.stripe, [this, loc, dataUnit,
                                   done = std::move(done)] {
        const int G = layout_->stripeWidth();
        auto combined = [this, loc, dataUnit, done = std::move(done)] {
            const UnitValue value =
                xorStripeExcept(loc.su.stripe, loc.su.pos);
            DECLUST_ASSERT(value == shadow_.get(dataUnit),
                           "on-the-fly reconstruction of unit ", dataUnit,
                           " produced wrong data");
            const bool piggyback =
                reconActive_ &&
                algorithm_ == ReconAlgorithm::RedirectPiggyback &&
                !reconstructed_[static_cast<std::size_t>(loc.data.offset)];
            if (!piggyback) {
                locks_.release(loc.su.stripe);
                done();
                return;
            }
            // Piggyback: the user response is complete, but the freshly
            // reconstructed unit is also written to its rebuild home
            // (the replacement disk or the stripe's spare unit).
            done();
            const PhysicalUnit dst =
                rebuildTarget(loc.su.stripe, loc.data.offset);
            issueUnit(
                dst, true,
                [this, loc, dst, value] {
                    contents_.set(dst.disk, dst.offset, value);
                    markReconstructed(loc.data.offset);
                    locks_.release(loc.su.stripe);
                },
                Priority::Background);
        };
        auto join = makeJoin(G - 1, [this, G, combined = std::move(
                                                  combined)]() mutable {
            afterXor(G - 1, std::move(combined));
        });
        for (int pos = 0; pos < G; ++pos) {
            if (pos == loc.su.pos)
                continue;
            const PhysicalUnit pu = effectiveUnit(loc.su.stripe, pos);
            DECLUST_ASSERT(pu.disk != failedDisk_,
                           "two stripe units on one disk");
            issueUnit(pu, false, join);
        }
    });
}

void
ArrayController::readUnits(std::int64_t firstDataUnit, int count,
                           std::function<void()> done)
{
    DECLUST_ASSERT(count > 0, "empty read");
    if (count == 1) {
        readUnit(firstDataUnit, std::move(done));
        return;
    }
    ++outstanding_;
    const Tick start = eq_.now();
    auto join = makeJoin(count, [this, start, done = std::move(done)] {
        finishUserOp(RequestKind::Read, start, done);
    });
    for (int i = 0; i < count; ++i)
        readCritical(locate(firstDataUnit + i), start, join);
}

// ----------------------------------------------------------------------
// Writes
// ----------------------------------------------------------------------

void
ArrayController::writeUnit(std::int64_t dataUnit, std::function<void()> done)
{
    ++outstanding_;
    const Tick start = eq_.now();
    const UnitLoc loc = locate(dataUnit);
    locks_.acquire(loc.su.stripe,
                   [this, loc, start, done = std::move(done)] {
                       writeCritical(loc, start,
                                     [this, start, done = std::move(done)] {
                                         finishUserOp(RequestKind::Write,
                                                      start, done);
                                     });
                   });
}

void
ArrayController::writeCritical(const UnitLoc &loc, Tick,
                               std::function<void()> done)
{
    const std::int64_t dataUnit = layout_->stripeToDataUnit(loc.su);
    const UnitValue v = values_.fresh();
    const int G = layout_->stripeWidth();
    const std::int64_t stripe = loc.su.stripe;

    const bool dataLost = unitLost(loc.data);
    const bool parityLost = unitLost(loc.parity);
    DECLUST_ASSERT(!(dataLost && parityLost),
                   "data and parity units of one stripe both lost");

    // Where the (valid) data and parity currently live: the layout
    // location, or the stripe's spare after a distributed rebuild.
    const PhysicalUnit dataDst = effectiveUnit(stripe, loc.su.pos);
    const PhysicalUnit parityDst = effectiveUnit(stripe, G - 1);

    if (parityLost) {
        // The parity unit is gone: there is no value in updating it, so
        // the write is a single data access (the paper's degraded-mode
        // "one, rather than four, disk accesses" case).
        issueUnit(dataDst, true,
                  [this, dataDst, stripe, dataUnit, v,
                   done = std::move(done)] {
                      contents_.set(dataDst.disk, dataDst.offset, v);
                      shadow_.set(dataUnit, v);
                      locks_.release(stripe);
                      done();
                  });
        return;
    }

    if (dataLost) {
        if (G == 2) {
            // Mirrored pair with a lost primary: just write the copy
            // (new "parity" = the new value itself).
            const bool writeThrough =
                reconActive_ && algorithm_ != ReconAlgorithm::Baseline;
            if (writeThrough) {
                const PhysicalUnit home =
                    rebuildTarget(stripe, loc.data.offset);
                auto join = makeJoin(
                    2, [this, loc, parityDst, home, stripe, dataUnit, v,
                        done = std::move(done)] {
                        contents_.set(parityDst.disk, parityDst.offset,
                                      v);
                        contents_.set(home.disk, home.offset, v);
                        shadow_.set(dataUnit, v);
                        markReconstructed(loc.data.offset);
                        locks_.release(stripe);
                        done();
                    });
                issueUnit(parityDst, true, join);
                issueUnit(home, true, join);
            } else {
                issueUnit(parityDst, true,
                          [this, parityDst, stripe, dataUnit, v,
                           done = std::move(done)] {
                              contents_.set(parityDst.disk,
                                            parityDst.offset, v);
                              shadow_.set(dataUnit, v);
                              locks_.release(stripe);
                              done();
                          });
            }
            return;
        }
        // The target data unit is lost. Read the other G-2 data units;
        // the new parity is their XOR with the new data.
        auto afterReads = [this, loc, parityDst, stripe, dataUnit, v, G,
                           done = std::move(done)]() mutable {
            UnitValue othersXor = 0;
            for (int pos = 0; pos < G - 1; ++pos) {
                if (pos == loc.su.pos)
                    continue;
                const PhysicalUnit pu = effectiveUnit(stripe, pos);
                othersXor ^= contents_.get(pu.disk, pu.offset);
            }
            const UnitValue newParity = othersXor ^ v;
            const bool writeThrough =
                reconActive_ && algorithm_ != ReconAlgorithm::Baseline;
            if (writeThrough) {
                // Send the data to its rebuild home as well (user-writes
                // and both redirect algorithms).
                const PhysicalUnit home =
                    rebuildTarget(stripe, loc.data.offset);
                auto join = makeJoin(
                    2, [this, loc, parityDst, home, stripe, dataUnit, v,
                        newParity, done = std::move(done)] {
                        contents_.set(parityDst.disk, parityDst.offset,
                                      newParity);
                        contents_.set(home.disk, home.offset, v);
                        shadow_.set(dataUnit, v);
                        markReconstructed(loc.data.offset);
                        locks_.release(stripe);
                        done();
                    });
                issueUnit(parityDst, true, join);
                issueUnit(home, true, join);
            } else {
                // Fold the write into the parity unit alone.
                issueUnit(parityDst, true,
                          [this, parityDst, stripe, dataUnit, v,
                           newParity, done = std::move(done)] {
                              contents_.set(parityDst.disk,
                                            parityDst.offset, newParity);
                              shadow_.set(dataUnit, v);
                              locks_.release(stripe);
                              done();
                          });
            }
        };
        // New parity = XOR of G-2 survivors and the new data.
        auto xorThen = [this, G, afterReads =
                                     std::move(afterReads)]() mutable {
            afterXor(G - 1, std::move(afterReads));
        };
        if (G == 3) {
            // Only one other data unit to read.
            int otherPos = loc.su.pos == 0 ? 1 : 0;
            issueUnit(effectiveUnit(stripe, otherPos), false,
                      std::move(xorThen));
        } else {
            auto join = makeJoin(G - 2, std::move(xorThen));
            for (int pos = 0; pos < G - 1; ++pos) {
                if (pos == loc.su.pos)
                    continue;
                issueUnit(effectiveUnit(stripe, pos), false, join);
            }
        }
        return;
    }

    // Both the data and parity units are readable.
    if (G == 2) {
        // Mirrored write: update both copies in parallel, no pre-reads.
        auto join = makeJoin(2, [this, dataDst, parityDst, stripe,
                                 dataUnit, v, done = std::move(done)] {
            contents_.set(dataDst.disk, dataDst.offset, v);
            contents_.set(parityDst.disk, parityDst.offset, v);
            shadow_.set(dataUnit, v);
            locks_.release(stripe);
            done();
        });
        issueUnit(dataDst, true, join);
        issueUnit(parityDst, true, join);
        return;
    }
    if (G == 3) {
        const int otherPos = loc.su.pos == 0 ? 1 : 0;
        const PhysicalUnit otherRaw = layout_->place(stripe, otherPos);
        if (!unitLost(otherRaw)) {
            // Three-access reconstruct-write (section 6): write the new
            // data and read the other data unit in parallel, then write
            // parity computed from the two.
            const PhysicalUnit otherPU = effectiveUnit(stripe, otherPos);
            auto join = makeJoin(
                2, [this, dataDst, parityDst, stripe, dataUnit, v,
                    otherPU, done = std::move(done)]() mutable {
                    afterXor(2, [this, dataDst, parityDst, stripe,
                                 dataUnit, v, otherPU,
                                 done = std::move(done)] {
                    const UnitValue newParity =
                        contents_.get(otherPU.disk, otherPU.offset) ^ v;
                    issueUnit(parityDst, true,
                              [this, dataDst, parityDst, stripe, dataUnit,
                               v, newParity, done = std::move(done)] {
                                  contents_.set(dataDst.disk,
                                                dataDst.offset, v);
                                  contents_.set(parityDst.disk,
                                                parityDst.offset,
                                                newParity);
                                  shadow_.set(dataUnit, v);
                                  locks_.release(stripe);
                                  done();
                              });
                    });
                });
            issueUnit(dataDst, true, join);
            issueUnit(otherPU, false, join);
            return;
        }
    }

    // Standard four-access read-modify-write: pre-read old data and old
    // parity, then overwrite both.
    auto preRead = makeJoin(2, [this, dataDst, parityDst, stripe,
                                dataUnit, v,
                                done = std::move(done)]() mutable {
        // New parity combines old data, old parity, and the new data.
        afterXor(3, [this, dataDst, parityDst, stripe, dataUnit, v,
                     done = std::move(done)] {
        const UnitValue oldData =
            contents_.get(dataDst.disk, dataDst.offset);
        const UnitValue oldParity =
            contents_.get(parityDst.disk, parityDst.offset);
        const UnitValue newParity = oldParity ^ oldData ^ v;
        auto join = makeJoin(2, [this, dataDst, parityDst, stripe,
                                 dataUnit, v, newParity,
                                 done = std::move(done)] {
            contents_.set(dataDst.disk, dataDst.offset, v);
            contents_.set(parityDst.disk, parityDst.offset, newParity);
            shadow_.set(dataUnit, v);
            locks_.release(stripe);
            done();
        });
        issueUnit(dataDst, true, join);
        issueUnit(parityDst, true, join);
        });
    });
    issueUnit(dataDst, false, preRead);
    issueUnit(parityDst, false, preRead);
}

void
ArrayController::largeWriteCritical(std::int64_t stripe, Tick,
                                    std::function<void()> done)
{
    DECLUST_ASSERT(failedDisk_ < 0,
                   "large-write path requires a fault-free array");
    const int G = layout_->stripeWidth();
    std::vector<UnitValue> newValues(static_cast<std::size_t>(G - 1));
    UnitValue parity = 0;
    for (auto &value : newValues) {
        value = values_.fresh();
        parity ^= value;
    }
    auto issueAll = makeJoin(G, [this, stripe, newValues, parity, G,
                                 done = std::move(done)] {
        for (int pos = 0; pos < G - 1; ++pos) {
            const PhysicalUnit pu = effectiveUnit(stripe, pos);
            contents_.set(pu.disk, pu.offset,
                          newValues[static_cast<std::size_t>(pos)]);
            shadow_.set(layout_->stripeToDataUnit(StripeUnit{stripe, pos}),
                        newValues[static_cast<std::size_t>(pos)]);
        }
        const PhysicalUnit ppu = effectiveUnit(stripe, G - 1);
        contents_.set(ppu.disk, ppu.offset, parity);
        locks_.release(stripe);
        done();
    });
    // The new parity XORs the G-1 fresh data units before anything hits
    // the disks.
    afterXor(G - 1, [this, stripe, G, issueAll = std::move(issueAll)] {
        for (int pos = 0; pos < G; ++pos)
            issueUnit(effectiveUnit(stripe, pos), true, issueAll);
    });
}

void
ArrayController::writeUnits(std::int64_t firstDataUnit, int count,
                            std::function<void()> done)
{
    DECLUST_ASSERT(count > 0, "empty write");
    if (count == 1) {
        writeUnit(firstDataUnit, std::move(done));
        return;
    }
    ++outstanding_;
    const Tick start = eq_.now();

    // Partition into whole-stripe spans (large-write optimized when
    // fault-free) and leftover single units.
    const int dus = layout_->dataUnitsPerStripe();
    struct Part
    {
        bool wholeStripe;
        std::int64_t id; // stripe index or data unit index
    };
    std::vector<Part> parts;
    std::int64_t unit = firstDataUnit;
    const std::int64_t end = firstDataUnit + count;
    while (unit < end) {
        if (failedDisk_ < 0 && unit % dus == 0 && unit + dus <= end) {
            parts.push_back(Part{true, unit / dus});
            unit += dus;
        } else {
            parts.push_back(Part{false, unit});
            ++unit;
        }
    }

    auto join = makeJoin(static_cast<int>(parts.size()),
                         [this, start, done = std::move(done)] {
                             finishUserOp(RequestKind::Write, start, done);
                         });
    for (const Part &part : parts) {
        if (part.wholeStripe) {
            locks_.acquire(part.id, [this, stripe = part.id, start, join] {
                largeWriteCritical(stripe, start, join);
            });
        } else {
            const UnitLoc loc = locate(part.id);
            locks_.acquire(loc.su.stripe, [this, loc, start, join] {
                writeCritical(loc, start, join);
            });
        }
    }
}

// ----------------------------------------------------------------------
// Failure and reconstruction
// ----------------------------------------------------------------------

bool
ArrayController::quiescent() const
{
    if (outstanding_ != 0 || locks_.heldCount() != 0)
        return false;
    if (cpu_ && (cpu_->busy() || cpu_->queued() != 0))
        return false;
    for (const auto &d : disks_)
        if (d->outstanding() != 0)
            return false;
    return true;
}

void
ArrayController::failDisk(int disk)
{
    DECLUST_ASSERT(disk >= 0 && disk < numDisks(), "bad disk id ", disk);
    DECLUST_ASSERT(failedDisk_ < 0, "disk ", failedDisk_,
                   " already failed: double failures lose data");
    DECLUST_ASSERT(!remapActive_,
                   "units still remapped to spares: copy back before "
                   "surviving another failure");
    DECLUST_ASSERT(quiescent(),
                   "failDisk requires a quiescent array (drain first)");
    failedDisk_ = disk;
    reconActive_ = false;
    contents_.poisonDisk(disk);
}

void
ArrayController::attachCommon(ReconAlgorithm algorithm)
{
    DECLUST_ASSERT(failedDisk_ >= 0, "no failed disk to replace");
    DECLUST_ASSERT(!reconActive_, "reconstruction already running");
    algorithm_ = algorithm;
    reconActive_ = true;
    reconstructed_.assign(static_cast<std::size_t>(unitsPerDisk()), 0);
    reconstructedCount_ = 0;
    mappedOnFailed_ = 0;
    for (int off = 0; off < unitsPerDisk(); ++off) {
        const auto su = layout_->invert(failedDisk_, off);
        // Spare units (pos == stripeWidth()) hold no protected data and
        // are not reconstructible.
        if (su && su->pos < layout_->stripeWidth())
            ++mappedOnFailed_;
    }
}

void
ArrayController::attachReplacement(ReconAlgorithm algorithm)
{
    DECLUST_ASSERT(failedDisk_ >= 0, "no failed disk to replace");
    contents_.blankDisk(failedDisk_);
    distributedSpare_ = false;
    attachCommon(algorithm);
}

void
ArrayController::attachDistributedSpare(ReconAlgorithm algorithm)
{
    DECLUST_ASSERT(layout_->hasSpareUnits(),
                   "this layout has no distributed spare units");
    DECLUST_ASSERT(!remapActive_, "spares already in use");
    distributedSpare_ = true;
    attachCommon(algorithm);
}

bool
ArrayController::isReconstructed(int offset) const
{
    DECLUST_ASSERT(reconActive_, "no reconstruction in progress");
    return reconstructed_[static_cast<std::size_t>(offset)] != 0;
}

std::int64_t
ArrayController::unrecoverableStripesIf(int secondDisk) const
{
    DECLUST_ASSERT(failedDisk_ >= 0, "no failed disk");
    DECLUST_ASSERT(secondDisk >= 0 && secondDisk < numDisks() &&
                       secondDisk != failedDisk_,
                   "second disk must be a different live disk");
    std::int64_t lost = 0;
    for (int off = 0; off < unitsPerDisk(); ++off) {
        const auto su = layout_->invert(failedDisk_, off);
        if (!su)
            continue;
        if (reconActive_ && reconstructed_[static_cast<std::size_t>(off)])
            continue; // this unit is already safe on the replacement
        for (int pos = 0; pos < layout_->stripeWidth(); ++pos) {
            if (pos == su->pos)
                continue;
            if (layout_->place(su->stripe, pos).disk == secondDisk) {
                ++lost;
                break;
            }
        }
    }
    return lost;
}

void
ArrayController::markReconstructed(int offset)
{
    DECLUST_ASSERT(reconActive_, "no reconstruction in progress");
    auto &flag = reconstructed_[static_cast<std::size_t>(offset)];
    if (!flag) {
        flag = 1;
        ++reconstructedCount_;
    }
}

void
ArrayController::reconstructOffset(int offset,
                                   std::function<void(CycleResult)> done)
{
    DECLUST_ASSERT(reconActive_, "no reconstruction in progress");
    DECLUST_ASSERT(offset >= 0 && offset < unitsPerDisk(),
                   "offset out of range");

    const auto su = layout_->invert(failedDisk_, offset);
    if (!su || su->pos >= layout_->stripeWidth() ||
        reconstructed_[static_cast<std::size_t>(offset)]) {
        // Unmapped, a spare unit (nothing to regenerate), or already
        // rebuilt by user activity.
        done(CycleResult{});
        return;
    }

    const std::int64_t stripe = su->stripe;
    const int pos = su->pos;
    locks_.acquire(stripe, [this, stripe, pos, offset,
                            done = std::move(done)] {
        // A user write-through may have reconstructed it while we waited.
        if (reconstructed_[static_cast<std::size_t>(offset)]) {
            locks_.release(stripe);
            done(CycleResult{});
            return;
        }
        const Tick readStart = eq_.now();
        const int G = layout_->stripeWidth();
        auto combined = [this, stripe, pos, offset, readStart,
                         done = std::move(done)] {
            const Tick writeStart = eq_.now();
            const UnitValue value = xorStripeExcept(stripe, pos);
            const PhysicalUnit home = rebuildTarget(stripe, offset);
            issueUnit(
                home, true,
                [this, stripe, home, offset, value, readStart, writeStart,
                 done = std::move(done)] {
                    contents_.set(home.disk, home.offset, value);
                    markReconstructed(offset);
                    locks_.release(stripe);
                    CycleResult res;
                    res.skipped = false;
                    res.readPhaseMs = ticksToMs(writeStart - readStart);
                    res.writePhaseMs = ticksToMs(eq_.now() - writeStart);
                    done(res);
                },
                Priority::Background);
        };
        auto join = makeJoin(G - 1, [this, G, combined = std::move(
                                                  combined)]() mutable {
            afterXor(G - 1, std::move(combined));
        });
        for (int p = 0; p < G; ++p) {
            if (p == pos)
                continue;
            const PhysicalUnit pu = effectiveUnit(stripe, p);
            DECLUST_ASSERT(pu.disk != failedDisk_,
                           "two stripe units on one disk");
            issueUnit(pu, false, join, Priority::Background);
        }
    });
}

void
ArrayController::finishReconstruction()
{
    DECLUST_ASSERT(reconActive_, "no reconstruction in progress");
    DECLUST_ASSERT(reconstructedCount_ == mappedOnFailed_,
                   "reconstruction incomplete: ", reconstructedCount_,
                   " of ", mappedOnFailed_, " units");
    // Verify every rebuilt unit before declaring the array healthy.
    for (int off = 0; off < unitsPerDisk(); ++off) {
        const auto su = layout_->invert(failedDisk_, off);
        if (!su || su->pos >= layout_->stripeWidth())
            continue; // unmapped or a (data-free) spare unit
        const PhysicalUnit home = effectiveUnit(su->stripe, su->pos);
        const UnitValue stored = contents_.get(home.disk, home.offset);
        const UnitValue implied = xorStripeExcept(su->stripe, su->pos);
        DECLUST_ASSERT(stored == implied, "reconstructed unit at offset ",
                       off, " disagrees with parity");
        if (su->pos < layout_->dataUnitsPerStripe()) {
            DECLUST_ASSERT(stored ==
                               shadow_.get(layout_->stripeToDataUnit(*su)),
                           "reconstructed data unit at offset ", off,
                           " disagrees with shadow contents");
        }
    }
    if (distributedSpare_) {
        // Rebuilt units keep living in their spares until copyback.
        remapActive_ = true;
        remapDisk_ = failedDisk_;
        remappedCount_ = reconstructedCount_;
        reconActive_ = false;
        failedDisk_ = -1;
        // reconstructed_ is retained: it is now the remap marker.
    } else {
        reconActive_ = false;
        failedDisk_ = -1;
        reconstructed_.clear();
    }
}

void
ArrayController::beginCopyback()
{
    DECLUST_ASSERT(remapActive_, "no spare remap to copy back");
    DECLUST_ASSERT(!copybackActive_, "copyback already running");
    DECLUST_ASSERT(failedDisk_ < 0 && !reconActive_,
                   "cannot copy back during a failure");
    // A fresh replacement drive arrives blank.
    contents_.blankDisk(remapDisk_);
    copybackActive_ = true;
}

void
ArrayController::copybackOffset(int offset, std::function<void(bool)> done)
{
    DECLUST_ASSERT(copybackActive_, "beginCopyback() first");
    DECLUST_ASSERT(offset >= 0 && offset < unitsPerDisk(),
                   "offset out of range");
    const auto su = layout_->invert(remapDisk_, offset);
    if (!su || su->pos >= layout_->stripeWidth() ||
        !reconstructed_[static_cast<std::size_t>(offset)]) {
        done(false);
        return;
    }
    const std::int64_t stripe = su->stripe;
    locks_.acquire(stripe, [this, stripe, offset,
                            done = std::move(done)] {
        const PhysicalUnit spare = layout_->placeSpare(stripe);
        issueUnit(
            spare, false,
            [this, stripe, spare, offset, done = std::move(done)] {
                const UnitValue value =
                    contents_.get(spare.disk, spare.offset);
                issueUnit(
                    PhysicalUnit{remapDisk_, offset}, true,
                    [this, stripe, offset, value,
                     done = std::move(done)] {
                        contents_.set(remapDisk_, offset, value);
                        // Unit lives on the replacement again; the spare
                        // slot is free.
                        reconstructed_[static_cast<std::size_t>(offset)] =
                            0;
                        --remappedCount_;
                        locks_.release(stripe);
                        done(true);
                    },
                    Priority::Background);
            },
            Priority::Background);
    });
}

void
ArrayController::finishCopyback()
{
    DECLUST_ASSERT(copybackActive_, "no copyback in progress");
    DECLUST_ASSERT(remappedCount_ == 0, "copyback incomplete: ",
                   remappedCount_, " units still remapped");
    copybackActive_ = false;
    remapActive_ = false;
    remapDisk_ = -1;
    reconstructed_.clear();
}

// ----------------------------------------------------------------------
// Statistics and verification
// ----------------------------------------------------------------------

void
ArrayController::setAccessTracer(AccessTracer tracer)
{
    for (auto &disk : disks_)
        disk->setTracer(tracer);
}

void
ArrayController::resetStats()
{
    stats_ = UserStats(params_.histogramLimitMs, params_.histogramBuckets);
    for (auto &d : disks_)
        d->resetStats();
    if (cpu_)
        cpu_->resetWindow();
}

void
ArrayController::verifyConsistency() const
{
    DECLUST_ASSERT(quiescent(), "verifyConsistency requires quiescence");
    const int G = layout_->stripeWidth();
    for (std::int64_t s = 0; s < layout_->numStripes(); ++s) {
        bool stripeIntact = true;
        int lostPos = -1;
        for (int pos = 0; pos < G; ++pos) {
            const PhysicalUnit pu = layout_->place(s, pos);
            if (unitLost(pu)) {
                stripeIntact = false;
                lostPos = pos;
            }
        }
        if (stripeIntact) {
            DECLUST_ASSERT(xorStripeExcept(s, -1) == 0,
                           "stripe ", s, " fails the parity invariant");
            for (int pos = 0; pos < G - 1; ++pos) {
                const PhysicalUnit pu = effectiveUnit(s, pos);
                DECLUST_ASSERT(
                    contents_.get(pu.disk, pu.offset) ==
                        shadow_.get(layout_->stripeToDataUnit(
                            StripeUnit{s, pos})),
                    "data unit (stripe ", s, ", pos ", pos,
                    ") disagrees with shadow");
            }
        } else if (lostPos < G - 1) {
            // Lost data unit: its parity-implied value must match shadow.
            DECLUST_ASSERT(
                xorStripeExcept(s, lostPos) ==
                    shadow_.get(layout_->stripeToDataUnit(
                        StripeUnit{s, lostPos})),
                "implied value of lost unit in stripe ", s,
                " disagrees with shadow");
        }
        // Lost parity unit: nothing further to check.
    }
}

} // namespace declust

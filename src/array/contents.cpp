#include "array/contents.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace declust {

ArrayContents::ArrayContents(int numDisks, int unitsPerDisk)
    : numDisks_(numDisks),
      unitsPerDisk_(unitsPerDisk),
      values_(static_cast<std::size_t>(numDisks) * unitsPerDisk, 0)
{
    DECLUST_ASSERT(numDisks_ > 0 && unitsPerDisk_ > 0,
                   "degenerate contents model");
}

std::size_t
ArrayContents::index(int disk, int offset) const
{
    DECLUST_ASSERT(disk >= 0 && disk < numDisks_, "disk ", disk,
                   " out of range");
    DECLUST_ASSERT(offset >= 0 && offset < unitsPerDisk_, "offset ",
                   offset, " out of range");
    return static_cast<std::size_t>(disk) * unitsPerDisk_ +
           static_cast<std::size_t>(offset);
}

UnitValue
ArrayContents::get(int disk, int offset) const
{
    return values_[index(disk, offset)];
}

void
ArrayContents::set(int disk, int offset, UnitValue value)
{
    values_[index(disk, offset)] = value;
}

void
ArrayContents::poisonDisk(int disk)
{
    const std::size_t base = index(disk, 0);
    std::fill_n(values_.begin() + static_cast<std::ptrdiff_t>(base),
                unitsPerDisk_, UnitValue{0xdeadbeefdeadbeefull});
}

void
ArrayContents::blankDisk(int disk)
{
    const std::size_t base = index(disk, 0);
    std::fill_n(values_.begin() + static_cast<std::ptrdiff_t>(base),
                unitsPerDisk_, UnitValue{0});
}

ShadowModel::ShadowModel(std::int64_t numDataUnits)
    : values_(static_cast<std::size_t>(numDataUnits), 0)
{
}

UnitValue
ShadowModel::get(std::int64_t dataUnit) const
{
    DECLUST_ASSERT(dataUnit >= 0 && dataUnit < size(), "data unit ",
                   dataUnit, " out of range");
    return values_[static_cast<std::size_t>(dataUnit)];
}

void
ShadowModel::set(std::int64_t dataUnit, UnitValue value)
{
    DECLUST_ASSERT(dataUnit >= 0 && dataUnit < size(), "data unit ",
                   dataUnit, " out of range");
    values_[static_cast<std::size_t>(dataUnit)] = value;
}

ValueSource::ValueSource(std::uint64_t seed) : state_(seed)
{
}

UnitValue
ValueSource::fresh()
{
    // splitmix64 step; skip the (vanishingly unlikely) zero output so a
    // written unit is always distinguishable from a blank one.
    for (;;) {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        if (z != 0)
            return z;
    }
}

} // namespace declust

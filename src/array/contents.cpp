#include "array/contents.hpp"

#include <algorithm>

#include "array/types.hpp"
#include "util/error.hpp"

namespace declust {

ArrayContents::ArrayContents(int numDisks, int unitsPerDisk)
    : numDisks_(numDisks),
      unitsPerDisk_(unitsPerDisk),
      values_(static_cast<std::size_t>(numDisks) * unitsPerDisk, 0)
{
    DECLUST_ASSERT(numDisks_ > 0 && unitsPerDisk_ > 0,
                   "degenerate contents model");
}

void
ArrayContents::poisonDisk(int disk)
{
    const std::size_t base = index(disk, 0);
    std::fill_n(values_.begin() + static_cast<std::ptrdiff_t>(base),
                unitsPerDisk_, UnitValue{0xdeadbeefdeadbeefull});
}

void
ArrayContents::blankDisk(int disk)
{
    const std::size_t base = index(disk, 0);
    std::fill_n(values_.begin() + static_cast<std::ptrdiff_t>(base),
                unitsPerDisk_, UnitValue{0});
}

ShadowModel::ShadowModel(std::int64_t numDataUnits)
    : values_(static_cast<std::size_t>(numDataUnits), 0)
{
}

ValueSource::ValueSource(std::uint64_t seed) : state_(seed)
{
}

} // namespace declust

#include "array/stripe_lock.hpp"

#include "stats/perf_counters.hpp"
#include "util/annotations.hpp"
#include "util/error.hpp"
#include "util/validate.hpp"

namespace declust {

namespace {

/** Initial capacity; must be a power of two. */
constexpr std::size_t kInitialSlots = 64;

} // namespace

StripeLockTable::StripeLockTable()
    : slots_(kInitialSlots, Slot{kEmpty, nullptr, nullptr}),
      mask_(kInitialSlots - 1)
{
}

std::size_t
StripeLockTable::homeIndex(std::int64_t stripe) const
{
    // Fibonacci hashing spreads consecutive stripe indices (the common
    // access pattern: sequential sweeps) across the table.
    DECLUST_ANALYZE_SUPPRESS(
        "seed-isolation: golden-ratio constant is a hash multiplier "
        "for lock-table slot spread, not a seed derivation");
    const auto h =
        static_cast<std::uint64_t>(stripe) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h >> 32) & mask_;
}

std::size_t
StripeLockTable::findIndex(std::int64_t stripe) const
{
    std::size_t i = homeIndex(stripe);
    while (slots_[i].stripe != kEmpty) {
        if (slots_[i].stripe == stripe)
            return i;
        i = (i + 1) & mask_;
    }
    return static_cast<std::size_t>(-1);
}

void
StripeLockTable::insert(const Slot &slot)
{
    std::size_t i = homeIndex(slot.stripe);
    while (slots_[i].stripe != kEmpty)
        i = (i + 1) & mask_;
    slots_[i] = slot;
}

void
StripeLockTable::eraseIndex(std::size_t index)
{
    // Backward-shift deletion keeps probe chains contiguous without
    // tombstones: pull every displaced follower back over the hole.
    std::size_t hole = index;
    slots_[hole].stripe = kEmpty;
    std::size_t i = hole;
    while (true) {
        i = (i + 1) & mask_;
        if (slots_[i].stripe == kEmpty)
            return;
        const std::size_t home = homeIndex(slots_[i].stripe);
        // Move slot i into the hole unless its home lies in (hole, i]
        // cyclically (in which case it is already as close as allowed).
        const bool movable = (i > hole)
                                 ? (home <= hole || home > i)
                                 : (home <= hole && home > i);
        if (movable) {
            slots_[hole] = slots_[i];
            slots_[i].stripe = kEmpty;
            hole = i;
        }
    }
}

void
StripeLockTable::grow()
{
    std::vector<Slot> old = std::move(slots_);
    DECLUST_ANALYZE_SUPPRESS(
        "hot-path-growth: table doubling fires only at a new held-lock high- "
        "water mark, never in steady state");
    slots_.assign(old.size() * 2, Slot{kEmpty, nullptr, nullptr});
    mask_ = slots_.size() - 1;
    for (const Slot &slot : old) {
        if (slot.stripe != kEmpty)
            insert(slot);
    }
}

bool
StripeLockTable::acquire(std::int64_t stripe, Waiter *waiter)
{
    DECLUST_ASSERT(stripe >= 0, "bad stripe index ", stripe);
    const std::size_t found = findIndex(stripe);
    if (found != static_cast<std::size_t>(-1)) {
        DECLUST_ASSERT(waiter && waiter->resume,
                       "contended acquire needs a resumable waiter");
        ++contended_;
        DECLUST_PERF_INC(LockContended);
        Slot &slot = slots_[found];
#if DECLUST_VALIDATE
        // Note: a *holder* re-acquiring its own stripe is legal — it
        // queues behind existing waiters and proceeds at its own
        // release (the requeue-to-back pattern). Only a waiter already
        // linked into a wait list must never be enqueued again.
        DECLUST_VALIDATE_CHECK(!waiter->vQueued,
                               "waiter ", static_cast<void *>(waiter),
                               " enqueued twice (stripe ", stripe, ")");
        validateWaitList(slot);
        waiter->vQueued = true;
#endif
        waiter->nextWaiter = nullptr;
        if (slot.tail)
            slot.tail->nextWaiter = waiter;
        else
            slot.head = waiter;
        slot.tail = waiter;
        return false;
    }
    // Grow before the table gets dense enough to degrade probing
    // (3/4 load); steady state re-uses the same backing vector forever.
    if ((heldCount_ + 1) * 4 > slots_.size() * 3)
        grow();
    insert(Slot{stripe, nullptr, nullptr});
    ++heldCount_;
    ++uncontended_;
    DECLUST_PERF_INC(LockUncontended);
    return true;
}

void
StripeLockTable::release(std::int64_t stripe)
{
    const std::size_t found = findIndex(stripe);
    DECLUST_ASSERT(found != static_cast<std::size_t>(-1),
                   "release of unheld stripe ", stripe);
    Slot &slot = slots_[found];
#if DECLUST_VALIDATE
    validateWaitList(slot);
#endif
    if (!slot.head) {
        eraseIndex(found);
        --heldCount_;
        return;
    }
    Waiter *next = slot.head;
    slot.head = next->nextWaiter;
    if (!slot.head)
        slot.tail = nullptr;
    next->nextWaiter = nullptr;
#if DECLUST_VALIDATE
    DECLUST_VALIDATE_CHECK(next->vQueued,
                           "handoff to a waiter that was never enqueued "
                           "(stripe ", stripe, ")");
    next->vQueued = false;
#endif
    ++handoffs_;
    DECLUST_PERF_INC(LockHandoffs);
    // The lock stays held on the waiter's behalf. resume may re-enter
    // acquire/release (and thus grow the table), so no slot reference
    // survives past this call.
    next->resume(next);
}

bool
StripeLockTable::locked(std::int64_t stripe) const
{
    return findIndex(stripe) != static_cast<std::size_t>(-1);
}

#if DECLUST_VALIDATE

void
StripeLockTable::validateWaitList(const Slot &slot) const
{
    if (!slot.head) {
        DECLUST_VALIDATE_CHECK(!slot.tail, "stripe ", slot.stripe,
                               ": wait list has a tail but no head");
        return;
    }
    DECLUST_VALIDATE_CHECK(slot.tail, "stripe ", slot.stripe,
                           ": wait list has a head but no tail");
    // Walk with a generous cycle bound: a simulation can never queue
    // more distinct waiters than it has live ops, and any real list is
    // tiny; blowing the bound means a cycle.
    constexpr std::size_t kCycleBound = 1u << 22;
    std::size_t length = 0;
    const Waiter *last = nullptr;
    for (const Waiter *w = slot.head; w; w = w->nextWaiter) {
        DECLUST_VALIDATE_CHECK(++length <= kCycleBound, "stripe ",
                               slot.stripe, ": wait list cycles");
        DECLUST_VALIDATE_CHECK(w->vQueued, "stripe ", slot.stripe,
                               ": wait list contains a waiter not "
                               "flagged as queued (stale link)");
        last = w;
    }
    DECLUST_VALIDATE_CHECK(last == slot.tail, "stripe ", slot.stripe,
                           ": wait-list tail pointer does not reach the "
                           "last linked waiter");
}

#endif

} // namespace declust

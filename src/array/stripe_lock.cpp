#include "array/stripe_lock.hpp"

#include <utility>

#include "util/error.hpp"

namespace declust {

void
StripeLockTable::acquire(std::int64_t stripe, std::function<void()> critical)
{
    DECLUST_ASSERT(critical, "null critical section");
    auto [it, inserted] = held_.try_emplace(stripe);
    if (inserted) {
        critical();
    } else {
        ++contended_;
        it->second.push_back(std::move(critical));
    }
}

void
StripeLockTable::release(std::int64_t stripe)
{
    auto it = held_.find(stripe);
    DECLUST_ASSERT(it != held_.end(), "release of unheld stripe ", stripe);
    if (it->second.empty()) {
        held_.erase(it);
        return;
    }
    auto next = std::move(it->second.front());
    it->second.pop_front();
    next(); // lock stays held on behalf of the next waiter
}

bool
StripeLockTable::locked(std::int64_t stripe) const
{
    return held_.count(stripe) != 0;
}

} // namespace declust

/**
 * @file
 * Logical-contents models used to verify array correctness end to end.
 *
 * The simulator's at-rest state is not real bytes; every stripe unit
 * carries a 64-bit UnitValue and parity is the XOR of its stripe's data
 * values, so "XOR over every stripe's units == 0" is the global
 * consistency invariant. ArrayContents tracks what is physically stored
 * on each disk; ShadowModel tracks what a perfect array would return for
 * each logical data unit. Together they let tests assert that every user
 * read returns the right data and that a completed reconstruction
 * restored exactly the lost contents.
 *
 * With `--data-plane verify|on` (ec/data_plane.hpp) each UnitValue
 * additionally stands for a full stripe unit of bytes via a GF(2)-linear
 * expansion, and every parity combine over these values is re-executed
 * over real buffers through the SIMD kernels and byte-compared — the
 * 64-bit invariant and the byte-level math are checked against each
 * other at every combine site.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "array/types.hpp"
#include "sim/seed.hpp"
#include "util/error.hpp"

namespace declust {

/** Physical per-(disk, offset) stored values. */
class ArrayContents
{
  public:
    ArrayContents(int numDisks, int unitsPerDisk);

    /* get/set/index are inline: the controller touches them on every
     * simulated access, and the range checks only need to fire in debug
     * builds. */
    UnitValue get(int disk, int offset) const
    {
        return values_[index(disk, offset)];
    }

    void set(int disk, int offset, UnitValue value)
    {
        values_[index(disk, offset)] = value;
    }

    /**
     * Poison every unit of @p disk (simulating loss of its contents on
     * failure) so stale reads are detectable.
     */
    void poisonDisk(int disk);

    /** Zero every unit of @p disk (a blank replacement drive). */
    void blankDisk(int disk);

    int numDisks() const { return numDisks_; }
    int unitsPerDisk() const { return unitsPerDisk_; }

  private:
    std::size_t index(int disk, int offset) const
    {
        DECLUST_DEBUG_ASSERT(disk >= 0 && disk < numDisks_, "disk ", disk,
                             " out of range");
        DECLUST_DEBUG_ASSERT(offset >= 0 && offset < unitsPerDisk_,
                             "offset ", offset, " out of range");
        return static_cast<std::size_t>(disk) * unitsPerDisk_ +
               static_cast<std::size_t>(offset);
    }

    int numDisks_;
    int unitsPerDisk_;
    std::vector<UnitValue> values_;
};

/** Expected value of every logical data unit. */
class ShadowModel
{
  public:
    explicit ShadowModel(std::int64_t numDataUnits);

    UnitValue get(std::int64_t dataUnit) const
    {
        DECLUST_DEBUG_ASSERT(dataUnit >= 0 && dataUnit < size(),
                             "data unit ", dataUnit, " out of range");
        return values_[static_cast<std::size_t>(dataUnit)];
    }

    void set(std::int64_t dataUnit, UnitValue value)
    {
        DECLUST_DEBUG_ASSERT(dataUnit >= 0 && dataUnit < size(),
                             "data unit ", dataUnit, " out of range");
        values_[static_cast<std::size_t>(dataUnit)] = value;
    }

    std::int64_t size() const
    {
        return static_cast<std::int64_t>(values_.size());
    }

  private:
    std::vector<UnitValue> values_;
};

/** Deterministic generator of distinct non-zero unit values. */
class ValueSource
{
  public:
    explicit ValueSource(std::uint64_t seed = 0xc0ffee);

    /** Next fresh value (never returns 0). */
    UnitValue fresh()
    {
        // splitmix64 step; skip the (vanishingly unlikely) zero output
        // so a written unit is always distinguishable from a blank one.
        for (;;) {
            const std::uint64_t z = splitmixNext(state_);
            if (z != 0)
                return z;
        }
    }

  private:
    std::uint64_t state_;
};

} // namespace declust

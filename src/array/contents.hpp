/**
 * @file
 * Logical-contents models used to verify array correctness end to end.
 *
 * The simulator does not move real bytes; instead every stripe unit
 * carries a 64-bit UnitValue and parity is the XOR of its stripe's data
 * values, so "XOR over every stripe's units == 0" is the global
 * consistency invariant. ArrayContents tracks what is physically stored
 * on each disk; ShadowModel tracks what a perfect array would return for
 * each logical data unit. Together they let tests assert that every user
 * read returns the right data and that a completed reconstruction
 * restored exactly the lost contents.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "array/types.hpp"

namespace declust {

/** Physical per-(disk, offset) stored values. */
class ArrayContents
{
  public:
    ArrayContents(int numDisks, int unitsPerDisk);

    UnitValue get(int disk, int offset) const;
    void set(int disk, int offset, UnitValue value);

    /**
     * Poison every unit of @p disk (simulating loss of its contents on
     * failure) so stale reads are detectable.
     */
    void poisonDisk(int disk);

    /** Zero every unit of @p disk (a blank replacement drive). */
    void blankDisk(int disk);

    int numDisks() const { return numDisks_; }
    int unitsPerDisk() const { return unitsPerDisk_; }

  private:
    std::size_t index(int disk, int offset) const;

    int numDisks_;
    int unitsPerDisk_;
    std::vector<UnitValue> values_;
};

/** Expected value of every logical data unit. */
class ShadowModel
{
  public:
    explicit ShadowModel(std::int64_t numDataUnits);

    UnitValue get(std::int64_t dataUnit) const;
    void set(std::int64_t dataUnit, UnitValue value);

    std::int64_t size() const
    {
        return static_cast<std::int64_t>(values_.size());
    }

  private:
    std::vector<UnitValue> values_;
};

/** Deterministic generator of distinct non-zero unit values. */
class ValueSource
{
  public:
    explicit ValueSource(std::uint64_t seed = 0xc0ffee);

    /** Next fresh value (never returns 0). */
    UnitValue fresh();

  private:
    std::uint64_t state_;
};

} // namespace declust

/**
 * @file
 * The RAID striping driver: maps user requests onto disk accesses under
 * a parity layout, in fault-free, degraded, and reconstructing states.
 *
 * Behaviour follows the paper exactly:
 *  - fault-free reads are one disk access; fault-free writes are a
 *    four-access read-modify-write (no caching, no combined
 *    read-modify-write arm timing), except G = 3 stripes which use the
 *    three-access reconstruct-write (section 6);
 *  - with a failed disk, reads of lost units reconstruct on the fly
 *    (G-1 reads); writes to lost data units fold into the parity unit;
 *    writes whose parity unit is lost update only the data (section 7);
 *  - with a replacement disk attached, the four reconstruction
 *    algorithms of section 8 decide what user work is sent to it.
 *
 * Every parity-mutating flow runs under a per-stripe lock, and the
 * simulated contents (64-bit value per unit, parity = XOR of data) are
 * checked against a shadow model on every user read.
 *
 * Internally each operation is a pooled IoOp continuation record (see
 * array/io_op.hpp) stepped through static continuation functions, so
 * steady-state user I/O performs no heap allocation: no lambda-capture
 * std::functions, no waiter queues, no per-request callback boxing.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "array/contents.hpp"
#include "array/io_op.hpp"
#include "array/stripe_lock.hpp"
#include "array/types.hpp"
#include "disk/disk.hpp"
#include "disk/fault_model.hpp"
#include "disk/geometry.hpp"
#include "disk/scheduler.hpp"
#include "ec/data_plane.hpp"
#include "layout/layout.hpp"
#include "sim/event_queue.hpp"
#include "sim/serial_resource.hpp"
#include "sim/slab_pool.hpp"
#include "sim/time.hpp"
#include "stats/accumulator.hpp"
#include "stats/histogram.hpp"
#include "util/annotations.hpp"

namespace declust {

/** Array-level configuration independent of the layout. */
struct ArrayParams
{
    DiskGeometry geometry = DiskGeometry::ibm0661();
    /** Head scheduler name: fcfs | sstf | scan | cvscan. */
    std::string scheduler = "cvscan";
    /** Sectors per stripe unit (8 x 512 B = the paper's 4 KB unit). */
    int unitSectors = 8;
    /** Seed for the written-value generator. */
    std::uint64_t valueSeed = 0xc0ffee;
    /**
     * Give user requests strict priority over reconstruction requests
     * at every disk (paper section 9's prioritization future work).
     */
    bool prioritizeUserIo = false;
    /**
     * Model the drives' track buffers (off by default: the paper's
     * simulator did not credit them either; see Disk::enableTrackBuffer).
     */
    bool trackBuffer = false;
    /**
     * Controller CPU cost charged before each disk access is issued,
     * milliseconds (default 0 = the paper's free-controller assumption;
     * section 9 flags CPU overhead as unmodeled, citing Chervenak &
     * Katz's RAID-prototype bottleneck measurements). When either
     * overhead is non-zero the controller CPU is modeled as a single
     * serial resource, so heavy recovery traffic can saturate it.
     */
    double controllerOverheadMs = 0.0;
    /**
     * XOR-engine cost per stripe unit combined, milliseconds. Charged
     * on the same serial controller CPU between the read and write
     * phases of any parity computation (read-modify-write, on-the-fly
     * reconstruction, rebuild cycles).
     */
    double xorOverheadMsPerUnit = 0.0;
    /**
     * Data-plane mode (see ec/data_plane.hpp). Off: value-level parity
     * math only, byte-identical to the pre-data-plane goldens. Verify:
     * every parity combine additionally XORs real stripe-unit buffers
     * through the dispatched SIMD kernels and cross-checks the result
     * against the 64-bit shadow value — no effect on simulated time.
     * On: Verify, plus the XOR cost charged to the controller CPU is
     * derived from measured kernel throughput (ec/cost_model.hpp),
     * *replacing* xorOverheadMsPerUnit.
     */
    ec::DataPlaneMode dataPlane = ec::DataPlaneMode::Off;
    /**
     * Hedged-read deadline, milliseconds (0 = hedging off, the
     * default; negative throws ConfigError). When positive, a plain
     * user read that has not completed within this deadline launches a
     * parity-reconstruct read — the G-1 survivor reads a degraded read
     * would perform — racing the slow disk; whichever side delivers
     * first wins, deterministically. The declustered layout makes the
     * race cheap: the reconstruct fan-out touches only G-1 of the
     * other disks, spread by the block design.
     */
    double hedgeAfterMs = 0.0;
    /** Response-time histogram range (ms) and bucket count. */
    double histogramLimitMs = 4000.0;
    std::size_t histogramBuckets = 4000;
};

/**
 * Hedged-read accounting, monotonic over the controller's lifetime
 * (like FaultStats; resetStats() does not clear it). Every launched
 * hedge ends exactly one way: the hedge delivers the value (win), the
 * primary delivers first and the hedge work is discarded (wasted), or
 * the chain aborts because the stripe lost a survivor (neither counter;
 * the read resolves through the primary or the loss path).
 */
struct HedgeStats
{
    std::uint64_t launched = 0;
    std::uint64_t wins = 0;
    std::uint64_t wasted = 0;
};

/**
 * Fault-path accounting: what the controller observed and what it had
 * to give up on. Monotonic over the controller's lifetime (resetStats()
 * does not clear it — a trial's loss record must survive measurement
 * windows).
 */
struct FaultStats
{
    /** Disk completions that reported an unrecovered medium error. */
    std::uint64_t mediumErrors = 0;
    /** Disk completions that reported whole-disk failure. */
    std::uint64_t diskFailedIos = 0;
    /** Units whose home read failed but whose value was regenerated
     * from parity (and rewritten when the home sector was remapped). */
    std::uint64_t sectorRepairs = 0;
    /** Parity stripes recorded as unrecoverable (some data is gone). */
    std::uint64_t unrecoverableStripes = 0;
    /** Distinct loss causes: each surviving-disk error that killed at
     * least one stripe, and each second whole-disk failure. */
    std::uint64_t dataLossEvents = 0;
    /** User reads completed without valid data. */
    std::uint64_t userReadsLost = 0;
    /** User writes that could not be applied. */
    std::uint64_t userWritesLost = 0;
    /** Failed-disk units reconstruction had to abandon. */
    std::uint64_t reconUnitsLost = 0;
};

/** User-visible response-time statistics. */
struct UserStats
{
    Accumulator readMs;
    Accumulator writeMs;
    Accumulator allMs;
    Histogram allHist;
    std::uint64_t readsDone = 0;
    std::uint64_t writesDone = 0;

    UserStats(double limitMs, std::size_t buckets)
        : allHist(limitMs, buckets) {}
};

/** The striping driver plus its disks. */
class ArrayController
{
  public:
    /**
     * @param eq Event queue driving the simulation.
     * @param layout Parity layout; its unitsPerDisk must equal the
     *        geometry's capacity in units.
     * @param params Array parameters.
     */
    ArrayController(EventQueue &eq, std::unique_ptr<Layout> layout,
                    const ArrayParams &params);

    ArrayController(const ArrayController &) = delete;
    ArrayController &operator=(const ArrayController &) = delete;

    /** @{ Topology accessors. */
    int numDisks() const { return layout_->numDisks(); }
    int stripeWidth() const { return layout_->stripeWidth(); }
    int unitsPerDisk() const { return layout_->unitsPerDisk(); }
    std::int64_t numDataUnits() const { return layout_->numDataUnits(); }
    const Layout &layout() const { return *layout_; }
    Disk &disk(int i) { return *disks_[static_cast<std::size_t>(i)]; }
    const Disk &disk(int i) const
    {
        return *disks_[static_cast<std::size_t>(i)];
    }
    EventQueue &eventQueue() { return eq_; }
    /** @} */

    // ------------------------------------------------------------------
    // User I/O
    // ------------------------------------------------------------------

    /** Read one data unit; @p done runs when the data is available. */
    DECLUST_HOT_PATH
    void readUnit(std::int64_t dataUnit, std::function<void()> done);

    /** Write one data unit with fresh contents. */
    DECLUST_HOT_PATH
    void writeUnit(std::int64_t dataUnit, std::function<void()> done);

    /**
     * Multi-unit accesses decompose per parity stripe; in the fault-free
     * state a write covering a whole stripe's data uses the large-write
     * optimization (criterion 5): G parallel writes, no pre-reads.
     */
    DECLUST_HOT_PATH
    void readUnits(std::int64_t firstDataUnit, int count,
                   std::function<void()> done);
    DECLUST_HOT_PATH
    void writeUnits(std::int64_t firstDataUnit, int count,
                    std::function<void()> done);

    /** User operations submitted but not yet completed. */
    std::int64_t outstandingUserOps() const { return outstanding_; }

    /** True when no user ops are in flight and all disks are idle. */
    bool quiescent() const;

    // ------------------------------------------------------------------
    // Failure and recovery control
    // ------------------------------------------------------------------

    /**
     * Fail @p disk, losing its contents. Requires a quiescent array (the
     * benches drain in-flight work first; the failure transient itself
     * is outside the paper's scope). Misuse — a bad id, a disk already
     * failed, spare units still remapped, an active copyback, or a
     * non-quiescent array — throws ConfigError (a defined error path,
     * not a panic).
     */
    void failDisk(int disk);

    /**
     * Fail a second disk while the first is still being repaired — the
     * data-loss path of the paper's MTTDL argument. Unlike failDisk()
     * this needs no quiescence: in-flight and queued accesses to the
     * dying disk complete with IoStatus::DiskFailed, every parity
     * stripe that now misses two units is recorded as unrecoverable
     * (one data-loss event for the batch), and the array keeps serving
     * everything else. Reconstruction, if running, skips the doomed
     * stripes and completes. Misuse (no first failure, same disk,
     * third failure, active copyback) throws ConfigError.
     */
    void failSecondDisk(int disk);

    /** The second failed disk (-1 if none). */
    int secondFailedDisk() const { return secondFailedDisk_; }

    /** Fault-path accounting (never reset; see FaultStats). */
    const FaultStats &faultStats() const { return faultStats_; }

    /** Hedged-read accounting (never reset; see HedgeStats). */
    const HedgeStats &hedgeStats() const { return hedgeStats_; }

    /** True when hedged reads are armed (hedgeAfterMs > 0). */
    bool hedging() const { return hedgeTicks_ > 0; }

    /** Stripes recorded as unrecoverable so far. */
    std::int64_t unrecoverableStripeCount() const
    {
        return static_cast<std::int64_t>(
            faultStats_.unrecoverableStripes);
    }

    /** True if @p stripe has been recorded as unrecoverable. */
    bool stripeUnrecoverable(std::int64_t stripe) const
    {
        return anyUnrecoverable_ &&
               unrecoverable_[static_cast<std::size_t>(stripe)] != 0;
    }

    /** Failed-disk units abandoned as unrecoverable during the current
     * reconstruction (reset when a replacement is attached). */
    std::int64_t reconLostUnits() const { return reconLostCount_; }

    /**
     * Attach per-disk error injectors (latent sector errors, transient
     * read errors) built from @p config; each disk gets an independent
     * stream derived from config.seed and its id. Call before the
     * workload starts. With no injector attached the controller's I/O
     * paths are bit-identical to the pre-fault-layer behaviour.
     */
    void attachFaultModels(const FaultConfig &config);

    /**
     * Switch @p disk into fail-slow (gray failure) mode per @p slow.
     * Requires attached fault models (they supply the mode's RNG
     * stream) and a disk that has not hard-failed; misuse throws
     * ConfigError.
     */
    void beginFailSlow(int disk, const FailSlowConfig &slow);

    /**
     * Scrub one unit: a background-priority verify read of stripe
     * @p stripe's unit at position @p pos (its current physical
     * location). A clean read completes the cycle immediately; a
     * medium error triggers a parity repair under the stripe lock —
     * G-1 background survivor reads, XOR, rewrite to the remapped home
     * sector — draining the latent defect. Scrub I/O never touches
     * user response-time statistics. Targeting a unit whose disk has
     * hard-failed throws ConfigError (the rebuild machinery owns dead
     * disks; the Scrubber skips them).
     */
    void scrubUnit(std::int64_t stripe, int pos,
                   std::function<void(CycleResult)> done);

    /**
     * Attach a blank replacement for the failed disk and select the
     * reconstruction algorithm. Reconstruction itself is driven by
     * calling reconstructOffset() (see core/Reconstructor).
     */
    void attachReplacement(ReconAlgorithm algorithm);

    /**
     * Begin rebuilding the failed disk into the layout's distributed
     * spare units instead of onto a replacement disk (requires a layout
     * with hasSpareUnits()). Reconstruction writes then scatter across
     * all surviving disks. After finishReconstruction() the rebuilt
     * units stay *remapped* to their spares until copyback.
     */
    void attachDistributedSpare(ReconAlgorithm algorithm);

    /** True if rebuilt units currently live in spare locations. */
    bool spareRemapActive() const { return remapActive_; }

    /** The disk whose units are remapped to spares (-1 if none). */
    int remappedDisk() const { return remapDisk_; }

    /**
     * Copy one remapped unit from its spare back to a fresh replacement
     * disk (beginCopyback() must have run). @p done receives true if a
     * unit was copied, false if the offset needed no copy.
     */
    void copybackOffset(int offset, std::function<void(bool)> done);

    /** Install a blank replacement for the remapped disk (copyback). */
    void beginCopyback();

    /** All units copied back: clear the remap, verify, return healthy. */
    void finishCopyback();

    /** Units still living in spare locations. */
    std::int64_t remappedCount() const { return remappedCount_; }

    /**
     * Run one reconstruction cycle for the failed disk's unit at
     * @p offset: under the stripe lock, read the G-1 surviving units,
     * XOR, write the result to the replacement. Skips unmapped or
     * already-reconstructed units.
     */
    DECLUST_HOT_PATH
    void reconstructOffset(int offset,
                           std::function<void(CycleResult)> done);

    /**
     * Declare reconstruction complete (all mapped units reconstructed),
     * verify the replacement's contents against parity and shadow, and
     * return the array to the fault-free state.
     */
    void finishReconstruction();

    int failedDisk() const { return failedDisk_; }
    bool reconstructing() const { return reconActive_; }
    ReconAlgorithm reconAlgorithm() const { return algorithm_; }

    /** Mapped (reconstructible) units on the failed disk. */
    std::int64_t unitsToReconstruct() const { return mappedOnFailed_; }

    /** Units reconstructed so far (by sweep or by user write-through). */
    std::int64_t reconstructedCount() const { return reconstructedCount_; }

    /** True if the failed disk's unit at @p offset has valid contents. */
    bool isReconstructed(int offset) const;

    /**
     * How many parity stripes would become unrecoverable if
     * @p secondDisk failed right now: stripes with a unit on
     * @p secondDisk whose failed-disk unit is still lost. Requires a
     * failed disk; decays to ~0 as reconstruction completes (the
     * vulnerability-window view of section 2's reliability argument).
     */
    std::int64_t unrecoverableStripesIf(int secondDisk) const;

    // ------------------------------------------------------------------
    // Statistics and verification
    // ------------------------------------------------------------------

    const UserStats &userStats() const { return stats_; }
    StripeLockTable &stripeLocks() { return locks_; }

    /** Controller CPU utilization (0 when overheads are disabled). */
    double cpuUtilization() const
    {
        return cpu_ ? cpu_->utilization() : 0.0;
    }

    /** Active data-plane mode. */
    ec::DataPlaneMode dataPlane() const { return params_.dataPlane; }

    /** Data-plane counters (all zero when the plane is off). */
    ec::DataPlane::Stats dataPlaneStats() const
    {
        return plane_ ? plane_->stats() : ec::DataPlane::Stats{};
    }

    /**
     * Simulated controller-CPU ticks charged for XORing @p units stripe
     * units: units x the per-unit tick cost, which is msToTicks of
     * xorOverheadMsPerUnit (modes off/verify) or of the calibrated
     * throughput-derived ms/unit (mode on). The basis is explicitly
     * per-unit — rounding happens once, in the per-unit constant — so
     * the charge is additive across batches: charging a G-1-unit
     * combine equals charging G-1 single units, and calibrated
     * constants plug in without double-charging.
     */
    Tick xorChargeTicks(int units) const
    {
        return static_cast<Tick>(units) * xorTicksPerUnit_;
    }

    /** Install an access tracer on every disk (null to disable). */
    void setAccessTracer(AccessTracer tracer);

    /** Clear user and per-disk statistics (start of measurement window). */
    void resetStats();

    /**
     * Assert full contents consistency. Requires quiescence. In the
     * healthy state checks that every stripe XORs to zero and every data
     * unit matches the shadow; with a failed disk checks surviving units
     * only. Throws InternalError on violation.
     */
    void verifyConsistency() const;

  private:
    /** The continuation steps live in controller.cpp. */
    friend struct IoSteps;

    struct UnitLoc
    {
        StripeUnit su;
        PhysicalUnit data;
        PhysicalUnit parity;
    };

    /** Pooled carrier for a disk request issued through the serial
     * controller CPU (the CPU-overhead path must not copy the request
     * through a lambda capture). */
    struct DeferredIssue
    {
        ArrayController *ctl;
        int disk;
        DiskRequest req;
#if DECLUST_VALIDATE
        /** Pool generation at allocation, checked before the deferred
         * submit runs (catches a carrier freed or reused in flight). */
        std::uint32_t gen;
#endif
    };

    UnitLoc locate(std::int64_t dataUnit) const;

    /** Issue a one-unit disk access; @p cb(@p ctx, status) runs on
     * completion. */
    void issueUnit(const PhysicalUnit &pu, bool isWrite,
                   void (*cb)(void *, IoStatus), void *ctx,
                   Priority priority = Priority::Normal);

    /** Run @p fn(@p ctx) after the XOR engine combines @p units units. */
    void afterXor(int units, void (*fn)(void *), void *ctx);

    /** True if this unit's contents are lost (failed and not rebuilt,
     * on the second failed disk, or abandoned as unrecoverable). */
    bool unitLost(const PhysicalUnit &pu) const;

    /** True if every unit of @p stripe except position @p excludePos is
     * readable, i.e. the excluded unit can be regenerated from parity. */
    bool stripeRecoverableExcept(std::int64_t stripe,
                                 int excludePos) const;

    /** Record @p stripe as unrecoverable; true if newly recorded (the
     * caller decides whether that constitutes a data-loss event). */
    bool markStripeUnrecoverable(std::int64_t stripe);

    /** Mark the failed disk's unit at @p offset as abandoned (never to
     * be rebuilt); keeps the reconstruction accounting balanced. */
    void markReconstructionLost(int offset);

    /**
     * Where stripe @p stripe's unit at @p pos physically lives right
     * now: its layout location, unless that unit has been rebuilt into
     * (or remains remapped to) the stripe's spare unit.
     */
    PhysicalUnit effectiveUnit(std::int64_t stripe, int pos) const;

    /** Destination a rebuilt unit is written to: the replacement disk
     * (dedicated sparing) or the stripe's spare unit (distributed). */
    PhysicalUnit rebuildTarget(std::int64_t stripe, int offset) const;

    /** Shared tail of attachReplacement/attachDistributedSpare. */
    void attachCommon(ReconAlgorithm algorithm);

    /** XOR of the stored values of stripe @p stripe except position
     * @p excludePos (pass -1 to include all positions). With the data
     * plane enabled the same combine is replayed over real stripe-unit
     * buffers and cross-checked (see ec/data_plane.hpp). */
    UnitValue xorStripeExcept(std::int64_t stripe, int excludePos) const;

    /** Data-plane hook for combines not expressed via xorStripeExcept:
     * byte-verify that XOR of @p count values at @p vals equals
     * @p expected. No-op when the plane is off. */
    void checkCombine(const char *site, const UnitValue *vals, int count,
                      UnitValue expected) const
    {
        if (plane_)
            plane_->checkCombine(site, vals, count, expected);
    }

    /** Most input values a byte-checked combine can carry (bounds the
     * gather arrays on the combine paths' stacks). */
    static constexpr int kMaxCheckedStripeWidth = 64;

    void markReconstructed(int offset);

    EventQueue &eq_;
    std::unique_ptr<Layout> layout_;
    ArrayParams params_;

    std::vector<std::unique_ptr<Disk>> disks_;
    /** Serial controller CPU; null when overheads are disabled. */
    std::unique_ptr<SerialResource> cpu_;
    /** Real-bytes data plane; null in mode Off (the default), so the
     * off path pays one pointer test per combine. */
    std::unique_ptr<ec::DataPlane> plane_;
    /** Per-unit XOR charge, fixed at construction (see xorChargeTicks). */
    Tick xorTicksPerUnit_ = 0;
    ArrayContents contents_;
    ShadowModel shadow_;
    ValueSource values_;
    StripeLockTable locks_;
    IoOpPool ops_;
    SlabPool deferredPool_{sizeof(DeferredIssue), 64};

    int failedDisk_ = -1;
    /** Second concurrent whole-disk failure (-1 if none). */
    int secondFailedDisk_ = -1;
    bool reconActive_ = false;
    /** Rebuilding into distributed spares rather than a replacement. */
    bool distributedSpare_ = false;
    ReconAlgorithm algorithm_ = ReconAlgorithm::Baseline;
    /** Per-offset rebuild state of the failed disk: kNotRebuilt,
     * kRebuilt, or kLostForever (see the constants in controller.cpp). */
    std::vector<std::uint8_t> reconstructed_;
    std::int64_t reconstructedCount_ = 0;
    /** Failed-disk units abandoned as unrecoverable. */
    std::int64_t reconLostCount_ = 0;
    std::int64_t mappedOnFailed_ = 0;

    /** Per-stripe unrecoverable flags; allocated on first loss so the
     * fault-free path pays one bool test. */
    std::vector<std::uint8_t> unrecoverable_;
    bool anyUnrecoverable_ = false;
    FaultStats faultStats_;

    /** Hedged-read deadline in ticks (0 = off). */
    Tick hedgeTicks_ = 0;
    /** Hedged ops whose pooled record is still alive (a deadline timer
     * or hedge chain may outlive the user-visible completion); drains
     * to zero before the array is quiescent. */
    std::int64_t hedgedLive_ = 0;
    HedgeStats hedgeStats_;

    /** Post-reconstruction spare remap (distributed sparing only). */
    bool remapActive_ = false;
    int remapDisk_ = -1;
    std::int64_t remappedCount_ = 0;
    bool copybackActive_ = false;

    std::int64_t outstanding_ = 0;
    UserStats stats_;
};

} // namespace declust

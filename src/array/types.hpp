/**
 * @file
 * Shared types for the array striping driver.
 */
#pragma once

#include <cstdint>
#include <functional>

namespace declust {

/** Simulated contents of one stripe unit (stands in for 4 KB of data). */
using UnitValue = std::uint64_t;

/** Kind of a user request. */
enum class RequestKind { Read, Write };

/**
 * Reconstruction algorithms (paper section 8): distinguished by how much
 * non-reconstruction work is sent to the replacement disk.
 */
enum class ReconAlgorithm
{
    /** Writes fold into parity; no optimizations. */
    Baseline,
    /** + user writes aimed at the replacement go directly to it. */
    UserWrites,
    /** + reads of already-reconstructed units go to the replacement. */
    Redirect,
    /** + on-the-fly reconstructions are written back to the replacement. */
    RedirectPiggyback,
};

/** Display name for a reconstruction algorithm. */
const char *toString(ReconAlgorithm algorithm);

/** Outcome of one reconstruction cycle. */
struct CycleResult
{
    /** True if the unit was unmapped or already reconstructed. */
    bool skipped = true;
    /** True if the unit could not be rebuilt (a surviving unit of its
     * stripe returned a medium error or sat on a second failed disk);
     * the stripe was recorded as unrecoverable and the sweep moves on. */
    bool lost = false;
    /** Scrub cycles only: the verify read surfaced a latent defect and
     * the unit was regenerated from parity and rewritten in place. */
    bool repaired = false;
    double readPhaseMs = 0.0;
    double writePhaseMs = 0.0;
};

} // namespace declust

/**
 * @file
 * Pooled continuation object for the array controller's I/O spine.
 *
 * Every user request, reconstruction cycle, and copyback cycle is one
 * IoOp: a slab-pooled state-machine record that carries the flow —
 * locate → stripe-lock → fork reads → XOR → writes → release — through
 * plain function-pointer continuations instead of nested lambda
 * captures. The op doubles as the stripe lock's intrusive waiter (it
 * derives StripeLockTable::Waiter), so a contended acquire links the op
 * itself into the wait list. Once the per-controller pool is warm, a
 * steady-state user I/O performs no heap allocation at all (the
 * allocation-guard test in tests/test_alloc_guard.cpp enforces this).
 *
 * Lifecycle: acquired from IoOpPool at the operation's entry point,
 * released exactly once when its flow ends. A multi-unit request uses
 * one parent op (holding the user's `done` and the part fan-in count)
 * plus one part op per stripe-level sub-operation; parts signal the
 * parent and are released independently. Ops are thread-confined, like
 * the SlabPool underneath.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <new>

#include "array/stripe_lock.hpp"
#include "array/types.hpp"
#include "disk/fault_model.hpp"
#include "layout/layout.hpp"
#include "sim/slab_pool.hpp"
#include "sim/time.hpp"
#include "stats/perf_counters.hpp"
#include "util/annotations.hpp"
#include "util/validate.hpp"

namespace declust {

class ArrayController;

/** One in-flight controller operation (user part, recon/copyback cycle). */
struct IoOp : StripeLockTable::Waiter
{
    ArrayController *ctl = nullptr;
    /** Owning multi-unit op, or null when this op stands alone. */
    IoOp *parent = nullptr;
    /** Fan-in counter: outstanding forks (parts for a parent op, disk
     * completions for a leaf op's current phase). */
    int pending = 0;
    RequestKind kind = RequestKind::Read;
    /** Failed-disk offset (reconstruction / copyback cycles). */
    int offset = 0;
    /** Op start (user ops) or read-phase start (recon cycles). */
    Tick start = 0;
    /** Scratch timestamp: lock-wait start, then write-phase start. */
    Tick mid = 0;
    /** Logical target unit and its layout placements. */
    StripeUnit su;
    PhysicalUnit data;
    PhysicalUnit parity;
    /** Flow-specific physical destinations (see controller.cpp). */
    PhysicalUnit dst0;
    PhysicalUnit dst1;
    PhysicalUnit dst2;
    std::int64_t dataUnit = 0;
    /** New/reconstructed data value. The XOR staging values feed the
     * value-level parity math; with the data plane enabled the same
     * combines are replayed over real bytes and cross-checked at the
     * controller's combine sites (see ArrayController::checkCombine). */
    UnitValue v = 0;
    /** Secondary value (new parity). */
    UnitValue aux = 0;
    /** Worst disk-completion status seen by the current phase (reset
     * when a step re-forks; see IoSteps::noteStatus). */
    IoStatus status = IoStatus::Ok;
    /** Read-repair bookkeeping: true when the failed home read was a
     * medium error, so the recovered value must be rewritten to the
     * (remapped) home sector. */
    bool repairRewrite = false;
    /** Hedged-read lifetime: obligations (deadline timer, hedge chain)
     * that keep this op alive beyond its user-visible flow. The op is
     * recycled only when the primary flow has ended AND every hold has
     * been dropped (see IoSteps::opRelease / dropHold). */
    std::uint8_t hedgeHolds = 0;
    /** Hedge state bits (kHedge* constants in controller.cpp). */
    std::uint8_t hedgeFlags = 0;
    /** User completion (small captures stay inline in std::function). */
    std::function<void()> done;
    std::function<void(CycleResult)> cycleDone;
    std::function<void(bool)> copyDone;
};

/** Slab-backed pool of IoOps; steady state never touches the heap. */
class IoOpPool
{
  public:
    IoOp *
    acquire()
    {
        DECLUST_PERF_INC(IoOpAcquired);
        const std::size_t slabs = pool_.slabCount();
        void *mem = pool_.allocate();
        if (pool_.slabCount() != slabs)
            DECLUST_PERF_INC(IoOpSlabs);
        return new (mem) IoOp;
    }

    void
    release(IoOp *op)
    {
        // The liveness check must precede the destructor: destroying an
        // already-released op would run ~IoOp over poisoned memory.
        DECLUST_VALIDATE_CHECK(pool_.ownsLive(op),
                               "IoOp released twice (or foreign pointer) "
                               "at ", static_cast<void *>(op));
        DECLUST_PERF_INC(IoOpReleased);
        op->~IoOp();
        pool_.deallocate(op);
    }

    /** Ops currently live (diagnostics). */
    std::size_t live() const { return pool_.liveChunks(); }

#if DECLUST_VALIDATE
    /** True if @p op is a currently-live op of this pool. */
    bool isLive(const IoOp *op) const { return pool_.ownsLive(op); }
#endif

  private:
    SlabPool pool_{sizeof(IoOp), 128};
};

} // namespace declust

/**
 * @file
 * Time-weighted busy/idle tracking for a single server (a disk).
 *
 * Integrates busy time against the simulated clock so per-disk utilization
 * can be reported for any measurement window.
 */
#pragma once

#include "sim/time.hpp"
#include "util/error.hpp"

namespace declust {

/** Tracks cumulative busy ticks of a binary busy/idle resource. */
class UtilizationTracker
{
  public:
    /** Mark the resource busy at time @p now (must currently be idle).
     * Inline: toggled on every disk dispatch/completion. */
    void
    setBusy(Tick now)
    {
        DECLUST_ASSERT(!busy_, "resource already busy");
        busy_ = true;
        busySince_ = now;
    }

    /** Mark the resource idle at time @p now (must currently be busy). */
    void
    setIdle(Tick now)
    {
        DECLUST_ASSERT(busy_, "resource already idle");
        DECLUST_ASSERT(now >= busySince_, "time went backwards");
        accumulated_ += now - busySince_;
        busy_ = false;
    }

    /** True if currently marked busy. */
    bool busy() const { return busy_; }

    /** Cumulative busy ticks up to @p now. */
    Tick busyTicks(Tick now) const;

    /**
     * Utilization over [windowStart, now]: busy fraction of wall time.
     * Requires resetWindow(windowStart) to have been called at the window
     * start.
     */
    double utilization(Tick now) const;

    /** Start a new measurement window at @p now. */
    void resetWindow(Tick now);

    /** Start of the current measurement window. */
    Tick windowStart() const { return windowStart_; }

  private:
    bool busy_ = false;
    Tick busySince_ = 0;
    Tick accumulated_ = 0;
    Tick windowStart_ = 0;
};

} // namespace declust

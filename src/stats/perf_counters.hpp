/**
 * @file
 * Compile-time-zero-cost performance counters for the simulator's I/O
 * spine.
 *
 * Counting sites are spread across the hot path (disk submits, stripe
 * locks, pooled continuation ops, callback spills), so the layer is
 * built to cost nothing when compiled out and almost nothing when on:
 *
 *  - With DECLUST_PERF_COUNTERS=0 every DECLUST_PERF_* macro expands to
 *    `(void)0`; no counter storage is touched and no code is emitted.
 *  - With DECLUST_PERF_COUNTERS=1 (the default) each site is a plain
 *    thread-local increment — no atomics, no locks on the hot path.
 *
 * Counters are per-thread blocks registered with a global registry.
 * TrialRunner workers each get their own block; when a thread exits its
 * block is folded into the registry's retired total, so aggregation
 * after a parallel sweep sees every event. perfAggregate() must only be
 * run while no other thread is actively counting (benches call it after
 * the worker pool has joined).
 *
 * Everything callable from the hot path is defined inline here so the
 * subsystem libraries (sim, disk, array) need no link-time dependency
 * on declust_stats; only cold aggregation/naming helpers live in
 * perf_counters.cpp.
 */
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#ifndef DECLUST_PERF_COUNTERS
#define DECLUST_PERF_COUNTERS 1
#endif

namespace declust {

/**
 * Event counters by type. The X-macro keeps the enum and the JSON field
 * names in one place (see perfCounterName()).
 */
#define DECLUST_PERF_COUNTER_LIST(X)                                       \
    X(IoOpAcquired, "io_ops_acquired")                                     \
    X(IoOpReleased, "io_ops_released")                                     \
    X(IoOpSlabs, "io_op_pool_slabs")                                       \
    X(DeferredIssues, "deferred_issues")                                   \
    X(CallbackInline, "callbacks_inline")                                  \
    X(CallbackSpillPooled, "callbacks_spill_pooled")                       \
    X(CallbackSpillHeap, "callbacks_spill_heap")                           \
    X(LockUncontended, "lock_acquires_uncontended")                        \
    X(LockContended, "lock_acquires_contended")                            \
    X(LockHandoffs, "lock_handoffs")                                       \
    X(DiskReadUser, "disk_reads_user")                                     \
    X(DiskWriteUser, "disk_writes_user")                                   \
    X(DiskReadBackground, "disk_reads_background")                         \
    X(DiskWriteBackground, "disk_writes_background")                       \
    X(DiskCompletions, "disk_completions")                                 \
    X(TrackBufferHits, "track_buffer_hits")                                \
    X(CpuJobs, "cpu_jobs")                                                 \
    X(UserReads, "user_reads")                                             \
    X(UserWrites, "user_writes")                                           \
    X(RmwWrites, "rmw_writes")                                             \
    X(ReconstructWrites, "reconstruct_writes")                             \
    X(MirroredWrites, "mirrored_writes")                                   \
    X(LargeWrites, "large_writes")                                         \
    X(DegradedReads, "degraded_reads")                                     \
    X(DegradedWrites, "degraded_writes")                                   \
    X(ParityLostWrites, "parity_lost_writes")                              \
    X(PiggybackWrites, "piggyback_writes")                                 \
    X(ReadRepairs, "read_repairs")                                         \
    X(ReconCycles, "recon_cycles")                                         \
    X(CopybackCycles, "copyback_cycles")                                   \
    X(EventQueueSpills, "event_queue_spills")                              \
    X(EventQueueResizes, "event_queue_resizes")                            \
    X(EventQueueRebuilds, "event_queue_rebuilds")                          \
    X(HedgesLaunched, "hedges_launched")                                   \
    X(HedgeWins, "hedge_wins")                                             \
    X(HedgeWasted, "hedge_wasted")                                         \
    X(ScrubReads, "scrub_reads")                                           \
    X(ScrubRepairs, "scrub_repairs")

/** Per-phase tick histograms (power-of-two buckets). */
#define DECLUST_PERF_HIST_LIST(X)                                          \
    X(LockWaitTicks, "lock_wait_ticks")                                    \
    X(DiskQueueTicks, "disk_queue_ticks")                                  \
    X(DiskServiceTicks, "disk_service_ticks")                              \
    X(UserReadTicks, "user_read_ticks")                                    \
    X(UserWriteTicks, "user_write_ticks")                                  \
    X(ReconReadPhaseTicks, "recon_read_phase_ticks")                       \
    X(ReconWritePhaseTicks, "recon_write_phase_ticks")                     \
    X(EventBucketScan, "event_bucket_scan_steps")                          \
    X(EventBucketOccupancy, "event_bucket_occupancy")

enum class PerfCounter : std::size_t
{
#define DECLUST_PERF_ENUM(name, str) name,
    DECLUST_PERF_COUNTER_LIST(DECLUST_PERF_ENUM)
#undef DECLUST_PERF_ENUM
        kCount
};

enum class PerfHist : std::size_t
{
#define DECLUST_PERF_ENUM(name, str) name,
    DECLUST_PERF_HIST_LIST(DECLUST_PERF_ENUM)
#undef DECLUST_PERF_ENUM
        kCount
};

inline constexpr std::size_t kPerfCounterCount =
    static_cast<std::size_t>(PerfCounter::kCount);
inline constexpr std::size_t kPerfHistCount =
    static_cast<std::size_t>(PerfHist::kCount);

/**
 * Power-of-two bucket histogram: bucket i counts samples whose bit
 * width is i (i.e. values in [2^(i-1), 2^i)); bucket 0 counts zeros.
 */
struct Log2Hist
{
    std::array<std::uint64_t, 65> buckets{};

    void
    add(std::uint64_t value)
    {
        ++buckets[static_cast<std::size_t>(std::bit_width(value))];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t b : buckets)
            n += b;
        return n;
    }
};

/** One thread's counter state. */
struct PerfCounterBlock
{
    std::array<std::uint64_t, kPerfCounterCount> counters{};
    std::array<Log2Hist, kPerfHistCount> hists{};

    void
    addFrom(const PerfCounterBlock &other)
    {
        for (std::size_t i = 0; i < kPerfCounterCount; ++i)
            counters[i] += other.counters[i];
        for (std::size_t i = 0; i < kPerfHistCount; ++i)
            for (std::size_t b = 0; b < other.hists[i].buckets.size(); ++b)
                hists[i].buckets[b] += other.hists[i].buckets[b];
    }
};

/** Registry of live per-thread blocks plus retired-thread totals. */
class PerfRegistry
{
  public:
    void
    attach(PerfCounterBlock *block)
    {
        std::lock_guard<std::mutex> lock(mu_);
        live_.push_back(block);
    }

    void
    detach(PerfCounterBlock *block)
    {
        std::lock_guard<std::mutex> lock(mu_);
        retired_.addFrom(*block);
        for (std::size_t i = 0; i < live_.size(); ++i) {
            if (live_[i] == block) {
                live_[i] = live_.back();
                live_.pop_back();
                break;
            }
        }
    }

    /** Retired totals + all live blocks. Quiescent threads only. */
    PerfCounterBlock
    aggregate() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        PerfCounterBlock sum = retired_;
        for (const PerfCounterBlock *block : live_)
            sum.addFrom(*block);
        return sum;
    }

    /** Zero every live block and the retired totals (tests only). */
    void
    reset()
    {
        std::lock_guard<std::mutex> lock(mu_);
        retired_ = PerfCounterBlock{};
        for (PerfCounterBlock *block : live_)
            *block = PerfCounterBlock{};
    }

  private:
    mutable std::mutex mu_;
    PerfCounterBlock retired_;
    std::vector<PerfCounterBlock *> live_;
};

inline PerfRegistry &
perfRegistry()
{
    static PerfRegistry registry;
    return registry;
}

/** True when the counting sites are compiled in. */
constexpr bool
perfCountersEnabled()
{
    return DECLUST_PERF_COUNTERS != 0;
}

#if DECLUST_PERF_COUNTERS

namespace detail {

/**
 * Constant-initialized cache of the current thread's block. A plain
 * constinit thread_local is a single TLS load with no init-guard check,
 * which matters because every counting site goes through it.
 */
inline constinit thread_local PerfCounterBlock *perfTlsPtr = nullptr;

struct PerfTlsHolder
{
    PerfCounterBlock block;
    PerfTlsHolder()
    {
        perfRegistry().attach(&block);
        perfTlsPtr = &block;
    }
    ~PerfTlsHolder()
    {
        perfTlsPtr = nullptr;
        perfRegistry().detach(&block);
    }
};

[[gnu::noinline]] inline PerfCounterBlock &
perfTlsSlow()
{
    thread_local PerfTlsHolder holder;
    return holder.block;
}

} // namespace detail

/** This thread's counter block (registered on first use). */
inline PerfCounterBlock &
perfTls()
{
    if (PerfCounterBlock *block = detail::perfTlsPtr) [[likely]]
        return *block;
    return detail::perfTlsSlow();
}

#define DECLUST_PERF_INC(counter)                                          \
    (++declust::perfTls().counters[static_cast<std::size_t>(               \
        declust::PerfCounter::counter)])
#define DECLUST_PERF_ADD(counter, n)                                       \
    (declust::perfTls().counters[static_cast<std::size_t>(                 \
        declust::PerfCounter::counter)] +=                                 \
     static_cast<std::uint64_t>(n))
#define DECLUST_PERF_HIST(hist, value)                                     \
    (declust::perfTls()                                                    \
         .hists[static_cast<std::size_t>(declust::PerfHist::hist)]         \
         .add(static_cast<std::uint64_t>(value)))

#else

#define DECLUST_PERF_INC(counter) ((void)0)
#define DECLUST_PERF_ADD(counter, n) ((void)0)
#define DECLUST_PERF_HIST(hist, value) ((void)0)

#endif

/** JSON field name of a counter / histogram. */
const char *perfCounterName(PerfCounter counter);
const char *perfHistName(PerfHist hist);

/** Snapshot across all threads (call only while counting is quiescent). */
PerfCounterBlock perfAggregate();

/** Zero all counters (tests and measurement windows). */
void perfReset();

} // namespace declust

#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace declust {

Histogram::Histogram(double limit, std::size_t buckets)
    : limit_(limit),
      bucketWidth_(limit / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    DECLUST_ASSERT(limit > 0 && buckets > 0, "bad histogram shape");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < 0)
        x = 0;
    if (x >= limit_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<std::size_t>(x / bucketWidth_);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

void
Histogram::merge(const Histogram &other)
{
    DECLUST_ASSERT(limit_ == other.limit_ &&
                       counts_.size() == other.counts_.size(),
                   "merging differently-shaped histograms");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    overflow_ += other.overflow_;
    total_ += other.total_;
}

double
Histogram::quantile(double q) const
{
    DECLUST_ASSERT(q > 0.0 && q <= 1.0, "quantile out of range: ", q);
    if (total_ == 0)
        return 0.0;
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double c = static_cast<double>(counts_[i]);
        if (cum + c >= target && c > 0) {
            const double within = (target - cum) / c;
            return (static_cast<double>(i) + within) * bucketWidth_;
        }
        cum += c;
    }
    return limit_;
}

double
Histogram::fractionBelow(double x) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    const auto lastFull = static_cast<std::size_t>(
        std::min(x / bucketWidth_, static_cast<double>(counts_.size())));
    for (std::size_t i = 0; i < lastFull; ++i)
        below += counts_[i];
    return static_cast<double>(below) / static_cast<double>(total_);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

} // namespace declust

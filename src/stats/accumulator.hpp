/**
 * @file
 * Streaming statistics accumulator (Welford's algorithm).
 *
 * Collects count/mean/variance/min/max in O(1) memory; used for response
 * times, phase durations, and service times throughout the simulator.
 */
#pragma once

#include <cstdint>

namespace declust {

/** Single-pass mean/variance/extrema accumulator. */
class Accumulator
{
  public:
    /** Add one sample. Inline: this runs several times per simulated
     * disk access, so a call per sample is measurable. */
    void
    add(double x)
    {
        if (n_ == 0) {
            min_ = max_ = x;
        } else {
            min_ = x < min_ ? x : min_;
            max_ = x > max_ ? x : max_;
        }
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
    }

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &other);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const;
    /** Unbiased sample variance (0 for < 2 samples). */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace declust

#include "sim/time.hpp"
#include "stats/utilization.hpp"

namespace declust {

Tick
UtilizationTracker::busyTicks(Tick now) const
{
    Tick total = accumulated_;
    if (busy_ && now > busySince_)
        total += now - busySince_;
    return total;
}

double
UtilizationTracker::utilization(Tick now) const
{
    if (now <= windowStart_)
        return 0.0;
    const Tick window = now - windowStart_;
    return static_cast<double>(busyTicks(now)) /
           static_cast<double>(window);
}

void
UtilizationTracker::resetWindow(Tick now)
{
    windowStart_ = now;
    accumulated_ = 0;
    if (busy_)
        busySince_ = now;
}

} // namespace declust

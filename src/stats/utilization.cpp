#include "stats/utilization.hpp"

#include "util/error.hpp"

namespace declust {

void
UtilizationTracker::setBusy(Tick now)
{
    DECLUST_ASSERT(!busy_, "resource already busy");
    busy_ = true;
    busySince_ = now;
}

void
UtilizationTracker::setIdle(Tick now)
{
    DECLUST_ASSERT(busy_, "resource already idle");
    DECLUST_ASSERT(now >= busySince_, "time went backwards");
    accumulated_ += now - busySince_;
    busy_ = false;
}

Tick
UtilizationTracker::busyTicks(Tick now) const
{
    Tick total = accumulated_;
    if (busy_ && now > busySince_)
        total += now - busySince_;
    return total;
}

double
UtilizationTracker::utilization(Tick now) const
{
    if (now <= windowStart_)
        return 0.0;
    const Tick window = now - windowStart_;
    return static_cast<double>(busyTicks(now)) /
           static_cast<double>(window);
}

void
UtilizationTracker::resetWindow(Tick now)
{
    windowStart_ = now;
    accumulated_ = 0;
    if (busy_)
        busySince_ = now;
}

} // namespace declust

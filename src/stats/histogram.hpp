/**
 * @file
 * Fixed-bucket histogram with percentile estimation.
 *
 * Used for response-time distributions (e.g. checking the OLTP "90% under
 * two seconds" rule the paper cites). Buckets are uniform over [0, limit)
 * with an overflow bucket; percentiles interpolate within a bucket.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace declust {

/** Uniform-bucket histogram over [0, limit) plus overflow. */
class Histogram
{
  public:
    /**
     * @param limit Upper edge of the tracked range (exclusive).
     * @param buckets Number of uniform buckets in [0, limit).
     */
    Histogram(double limit, std::size_t buckets);

    /** Record one sample. */
    void add(double x);

    /**
     * Fold @p other into this histogram. Both must have the same shape
     * (limit and bucket count); counts add bucket-wise, so merging is
     * exact — a merged histogram equals one fed both sample streams.
     */
    void merge(const Histogram &other);

    /** Upper edge of the tracked range (exclusive). */
    double limit() const { return limit_; }

    /** Number of uniform buckets in [0, limit). */
    std::size_t buckets() const { return counts_.size(); }

    /** Total samples recorded. */
    std::uint64_t count() const { return total_; }

    /** Samples that fell at or above the limit. */
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Estimate the @p q quantile (0 < q <= 1) by linear interpolation
     * within the containing bucket. Returns limit if the quantile lies in
     * the overflow bucket.
     */
    double quantile(double q) const;

    /** Fraction of samples strictly below @p x (bucket-resolution). */
    double fractionBelow(double x) const;

    /** Discard all samples. */
    void reset();

  private:
    double limit_;
    double bucketWidth_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace declust

#include "stats/shard_merge.hpp"

namespace declust {

void
PhaseSample::merge(const PhaseSample &other)
{
    readMs.merge(other.readMs);
    writeMs.merge(other.writeMs);
    allMs.merge(other.allMs);
    if (allHist.count() == 0 &&
        (allHist.limit() != other.allHist.limit() ||
         allHist.buckets() != other.allHist.buckets())) {
        // An empty placeholder adopts the first real shape it meets;
        // after that merge() asserts the shapes agree.
        allHist = other.allHist;
    } else {
        allHist.merge(other.allHist);
    }
    reads += other.reads;
    writes += other.writes;
    diskUtilization.merge(other.diskUtilization);
}

double
PhaseSample::p90Ms() const
{
    return allHist.count() ? allHist.quantile(0.90) : 0.0;
}

double
PhaseSample::p99Ms() const
{
    return allHist.count() ? allHist.quantile(0.99) : 0.0;
}

double
PhaseSample::p999Ms() const
{
    return allHist.count() ? allHist.quantile(0.999) : 0.0;
}

} // namespace declust

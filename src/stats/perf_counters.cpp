#include "stats/perf_counters.hpp"

namespace declust {

const char *
perfCounterName(PerfCounter counter)
{
    static const char *const names[] = {
#define DECLUST_PERF_NAME(name, str) str,
        DECLUST_PERF_COUNTER_LIST(DECLUST_PERF_NAME)
#undef DECLUST_PERF_NAME
    };
    return names[static_cast<std::size_t>(counter)];
}

const char *
perfHistName(PerfHist hist)
{
    static const char *const names[] = {
#define DECLUST_PERF_NAME(name, str) str,
        DECLUST_PERF_HIST_LIST(DECLUST_PERF_NAME)
#undef DECLUST_PERF_NAME
    };
    return names[static_cast<std::size_t>(hist)];
}

PerfCounterBlock
perfAggregate()
{
    return perfRegistry().aggregate();
}

void
perfReset()
{
    perfRegistry().reset();
}

} // namespace declust

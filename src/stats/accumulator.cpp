#include "stats/accumulator.hpp"

#include <algorithm>
#include <cmath>

namespace declust {

void
Accumulator::merge(const Accumulator &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Accumulator::reset()
{
    *this = Accumulator{};
}

double
Accumulator::mean() const
{
    return n_ ? mean_ : 0.0;
}

double
Accumulator::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::min() const
{
    return n_ ? min_ : 0.0;
}

double
Accumulator::max() const
{
    return n_ ? max_ : 0.0;
}

} // namespace declust

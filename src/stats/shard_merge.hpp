/**
 * @file
 * Deterministic, order-fixed merging of per-shard statistics.
 *
 * A sharded trial runs S independent arrays, each with its own event
 * queue and derived sub-seed, and combines their statistics as if one
 * serial run had produced all the samples. The merge rules:
 *
 *   Accumulator       Welford parallel combine (Accumulator::merge) —
 *                     exact for count/min/max, numerically stable for
 *                     mean/variance.
 *   Histogram         bucket-wise count addition — exact.
 *   PerfCounterBlock  counter/bucket addition — exact.
 *   utilization       time-weighted mean: each shard contributes its
 *                     utilization weighted by its window length, so a
 *                     short shard cannot drown out a long one.
 *
 * Determinism contract: callers must fold shards in shard-index order
 * (TrialRunner::runSharded guarantees the fold runs only after every
 * shard of the trial finished, reading results from an index-ordered
 * vector), so floating-point sums are identical whatever --jobs is.
 */
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "stats/accumulator.hpp"
#include "stats/histogram.hpp"
#include "stats/perf_counters.hpp"
#include "stats/utilization.hpp"

namespace declust {

/** Weighted arithmetic mean, mergeable across shards. */
class WeightedMean
{
  public:
    /** Fold one observation with weight @p weight (ignored if <= 0). */
    void
    add(double value, double weight)
    {
        if (weight <= 0.0)
            return;
        weightedSum_ += value * weight;
        totalWeight_ += weight;
    }

    /** Fold another weighted mean into this one. */
    void
    merge(const WeightedMean &other)
    {
        weightedSum_ += other.weightedSum_;
        totalWeight_ += other.totalWeight_;
    }

    /** The mean, or 0 with no (positively weighted) observations. */
    double
    value() const
    {
        return totalWeight_ > 0.0 ? weightedSum_ / totalWeight_ : 0.0;
    }

    double totalWeight() const { return totalWeight_; }

  private:
    double weightedSum_ = 0.0;
    double totalWeight_ = 0.0;
};

/**
 * Mergeable snapshot of one measured phase's user statistics: the raw
 * accumulators/histogram a shard collected, not the reduced means
 * PhaseStats reports — reducing before merging would weight shards
 * wrongly and lose the percentile information entirely.
 */
struct PhaseSample
{
    Accumulator readMs;
    Accumulator writeMs;
    Accumulator allMs;
    /** Placeholder shape; populated by copy-assignment from the
     * controller's histogram, whose shape all shards share. */
    Histogram allHist{1.0, 1};
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /** Disk utilization weighted by the phase's window length. */
    WeightedMean diskUtilization;

    /** Fold @p other in (callers fold in shard-index order). */
    void merge(const PhaseSample &other);

    /** @{ The reductions PhaseStats reports, over the merged sample. */
    double meanReadMs() const { return readMs.mean(); }
    double meanWriteMs() const { return writeMs.mean(); }
    double meanMs() const { return allMs.mean(); }
    double p90Ms() const;
    double p99Ms() const;
    double p999Ms() const;
    double meanDiskUtilization() const { return diskUtilization.value(); }
    /** @} */
};

/**
 * Uniform entry point for folding shard statistics: ShardMerge::into
 * overloads cover every mergeable statistic so call sites read the
 * same whatever they combine.
 */
struct ShardMerge
{
    static void
    into(Accumulator &dst, const Accumulator &src)
    {
        dst.merge(src);
    }

    static void
    into(Histogram &dst, const Histogram &src)
    {
        dst.merge(src);
    }

    static void
    into(PerfCounterBlock &dst, const PerfCounterBlock &src)
    {
        dst.addFrom(src);
    }

    static void
    into(WeightedMean &dst, const WeightedMean &src)
    {
        dst.merge(src);
    }

    static void
    into(PhaseSample &dst, const PhaseSample &src)
    {
        dst.merge(src);
    }

    /**
     * Fold a tracker's current window (windowStart()..@p now) into a
     * weighted utilization mean, weighting by the window length.
     */
    static void
    into(WeightedMean &dst, const UtilizationTracker &src, Tick now)
    {
        dst.add(src.utilization(now),
                ticksToSec(now - src.windowStart()));
    }
};

} // namespace declust
